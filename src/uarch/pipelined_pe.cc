#include "uarch/pipelined_pe.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/opcode.hh"
#include "sim/fault.hh"

namespace tia {

/**
 * Queue status as the pipelined scheduler sees it: live input
 * occupancy net of in-flight dequeues, cycle-start output occupancy
 * gross of in-flight and just-performed enqueues. Without +Q the view
 * degrades to the conservative full/empty discipline of Section 5.3.
 */
class CycleQueueView : public QueueStatusView
{
  public:
    explicit CycleQueueView(const PipelinedPe &pe) : pe_(pe) {}

    unsigned
    inputOccupancy(unsigned q) const override
    {
        const TaggedQueue *queue = pe_.inputs_.at(q);
        if (!queue)
            return 0;
        if (queue->faultStuckEmpty())
            return 0;
        const unsigned pending = pe_.pendingDeq_.at(q);
        if (!pe_.config_.effectiveQueueStatus) {
            // Conservative (RAW-style): a dequeue that was in flight at
            // the start of this cycle — including one that landed in
            // decode this very cycle — makes the queue look empty.
            const unsigned pending_at_start =
                pending + queue->popsThisCycle();
            return pending_at_start > 0 ? 0 : queue->size();
        }
        // Effective status: live occupancy net of in-flight dequeues
        // (algebraically identical to cycle-start occupancy minus
        // cycle-start in-flight dequeues).
        const unsigned live = queue->size();
        return live > pending ? live - pending : 0;
    }

    std::optional<Tag>
    inputHeadTag(unsigned q) const override
    {
        const TaggedQueue *queue = pe_.inputs_.at(q);
        if (!queue)
            return std::nullopt;
        if (queue->faultStuckEmpty())
            return std::nullopt;
        const unsigned depth = pe_.config_.effectiveQueueStatus
                                   ? pe_.pendingDeq_.at(q)
                                   : 0;
        const auto token = queue->peek(depth);
        if (!token)
            return std::nullopt;
        return token->tag;
    }

    bool
    outputHasSpace(unsigned q) const override
    {
        const TaggedQueue *queue = pe_.outputs_.at(q);
        if (!queue)
            return false;
        if (queue->faultStuckFull())
            return false;
        const unsigned pending = pe_.pendingEnq_.at(q);
        // Occupancy the consumer cannot have drained yet this cycle:
        // cycle-start contents plus pushes performed this cycle.
        const unsigned used = queue->snapshotSize() + queue->pendingPushes();
        if (!pe_.config_.effectiveQueueStatus) {
            // Conservative: any enqueue in flight at cycle start —
            // including one that landed this cycle — makes the queue
            // look full.
            const unsigned pending_at_start =
                pending + queue->pendingPushes();
            return pending_at_start == 0 && used < queue->capacity();
        }
        return used + pending < queue->capacity();
    }

  private:
    const PipelinedPe &pe_;
};

PipelinedPe::PipelinedPe(const ArchParams &params, const PeConfig &config,
                         std::vector<Instruction> program)
    : params_(params), config_(config), program_(std::move(program)),
      regs_(params.numRegs, 0), scratchpad_(params.scratchpadWords, 0),
      pendingDeq_(params.numInputQueues, 0),
      pendingEnq_(params.numOutputQueues, 0),
      pendingPredWrites_(params.numPreds, 0), predictor_(params.numPreds),
      inputs_(params.numInputQueues, nullptr),
      outputs_(params.numOutputQueues, nullptr)
{
    fatalIf(program_.size() > params_.numInstructions,
            "program exceeds the PE instruction store");
    fatalIf(config_.nestedSpeculation && !config_.predictPredicates,
            "nested speculation (+N) requires predicate prediction (+P)");
    for (const auto &inst : program_)
        inst.validate(params_);
}

void
PipelinedPe::bindInput(unsigned port, TaggedQueue *queue)
{
    inputs_.at(port) = queue;
}

void
PipelinedPe::bindOutput(unsigned port, TaggedQueue *queue)
{
    outputs_.at(port) = queue;
}

void
PipelinedPe::setRegs(const std::vector<Word> &values)
{
    fatalIf(values.size() > regs_.size(),
            "initial register set larger than the register file");
    for (std::size_t i = 0; i < values.size(); ++i)
        regs_[i] = values[i];
}

bool
PipelinedPe::busy() const
{
    return inFlight() > 0;
}

unsigned
PipelinedPe::inFlight() const
{
    unsigned count = 0;
    for (const auto &slot : slots_)
        if (slot.has_value())
            ++count;
    return count;
}

PeWaitInfo
PipelinedPe::queueWaits() const
{
    PeWaitInfo info;
    if (halted_)
        return info;

    CycleQueueView view(*this);
    auto note_input = [&](unsigned q) {
        if (std::find(info.waitInputs.begin(), info.waitInputs.end(), q) ==
            info.waitInputs.end()) {
            info.waitInputs.push_back(q);
        }
    };

    for (const auto &inst : program_) {
        if (!inst.trigger.valid)
            continue;
        // Only instructions whose predicate condition currently holds
        // can be *waiting* on queues; the rest are simply not eligible.
        if ((inst.trigger.predOn & ~preds_) != 0 ||
            (inst.trigger.predOff & preds_) != 0) {
            continue;
        }
        info.predicateEligible = true;
        if (queueConditionsHold(inst, view)) {
            info.canFire = true;
            continue;
        }
        // Collect every failing queue condition: empty (or wrong-tag)
        // inputs and full outputs.
        for (const auto &check : inst.trigger.queueChecks) {
            const auto tag = view.inputHeadTag(check.queue);
            if (view.inputOccupancy(check.queue) == 0 || !tag ||
                (*tag == check.tag) == check.negate) {
                note_input(check.queue);
            }
        }
        for (const auto &src : inst.srcs) {
            if (src.type == SrcType::InputQueue &&
                view.inputOccupancy(src.index) == 0) {
                note_input(src.index);
            }
        }
        for (auto q : inst.dequeues) {
            if (view.inputOccupancy(q) == 0)
                note_input(q);
        }
        if (inst.dst.type == DstType::OutputQueue &&
            !view.outputHasSpace(inst.dst.index) &&
            std::find(info.waitOutputs.begin(), info.waitOutputs.end(),
                      inst.dst.index) == info.waitOutputs.end()) {
            info.waitOutputs.push_back(inst.dst.index);
        }
    }
    return info;
}

bool
PipelinedPe::dataHazardFor(const Instruction &inst, std::uint64_t id) const
{
    // An older producer at segment s_p writes back at now + (last -
    // s_p); the consumer's first execute phase runs at now + (segX1 -
    // segD). The operand must be registered strictly before that
    // cycle, so a hazard exists iff s_p <= last - (segX1 - segD).
    // With a unified X this threshold excludes every older in-flight
    // position, making split-ALU shapes the only ones with register
    // hazards (one bubble each).
    const unsigned threshold = lastSeg() - (segX1() - segD());
    for (unsigned s = 0; s < config_.shape.depth(); ++s) {
        const auto &slot = slots_[s];
        if (!slot.has_value() || slot->id >= id)
            continue;
        if (s > threshold)
            continue;
        const Instruction &producer = *slot->inst;
        if (producer.dst.type != DstType::Reg)
            continue;
        for (const auto &src : inst.srcs) {
            if (src.type == SrcType::Reg &&
                src.index == producer.dst.index) {
                return true;
            }
        }
    }
    return false;
}

Word
PipelinedPe::readSource(const Source &src, Word imm) const
{
    switch (src.type) {
      case SrcType::None:
        return 0;
      case SrcType::Reg:
        return regs_.at(src.index);
      case SrcType::InputQueue: {
        const TaggedQueue *queue = inputs_.at(src.index);
        panicIf(queue == nullptr, "read of unbound input queue");
        const auto token = queue->peek(0);
        panicIf(!token.has_value(),
                "read of empty input queue — a hazard check failed");
        return token->data;
      }
      case SrcType::Immediate:
        return imm;
    }
    panic("readSource: bad source type");
}

void
PipelinedPe::doDecode(InFlight &entry)
{
    const Instruction &inst = *entry.inst;
    entry.operands[0] = readSource(inst.srcs[0], inst.imm);
    entry.operands[1] = readSource(inst.srcs[1], inst.imm);
    for (auto q : inst.dequeues) {
        TaggedQueue *queue = inputs_.at(q);
        panicIf(queue == nullptr, "dequeue of unbound input queue");
        queue->pop();
        panicIf(pendingDeq_.at(q) == 0, "dequeue accounting underflow");
        --pendingDeq_.at(q);
        ++counters_.dequeues;
    }
    entry.didD = true;
}

void
PipelinedPe::flushSpeculative()
{
    for (auto &slot : slots_) {
        if (!slot.has_value() || !slot->speculative())
            continue;
        const Instruction &inst = *slot->inst;
        panicIf(inst.hasPreRetirementSideEffect(),
                "a side-effecting instruction was issued speculatively");
        if (inst.enqueues()) {
            panicIf(pendingEnq_.at(inst.dst.index) == 0,
                    "enqueue accounting underflow on flush");
            --pendingEnq_.at(inst.dst.index);
        }
        ++counters_.quashed;
        slot.reset();
    }
}

void
PipelinedPe::doWriteback(InFlight &entry)
{
    const Instruction &inst = *entry.inst;
    panicIf(!entry.didD, "writeback before decode");
    panicIf(entry.speculative(),
            "a speculative instruction reached writeback unresolved");

    const Word a = entry.operands[0];
    const Word b = entry.operands[1];
    const OpInfo &info = opInfo(inst.op);

    Word result = 0;
    if (info.isHalt) {
        halted_ = true;
    } else if (info.readsScratchpad) {
        const Word address = a + b;
        fatalIf(address >= scratchpad_.size(), "scratchpad load at ",
                address, " out of bounds");
        result = scratchpad_[address];
    } else if (info.writesScratchpad) {
        fatalIf(a >= scratchpad_.size(), "scratchpad store at ", a,
                " out of bounds");
        scratchpad_[a] = b;
    } else {
        result = evalAlu(inst.op, a, b);
    }

    switch (inst.dst.type) {
      case DstType::None:
        break;
      case DstType::Reg:
        regs_.at(inst.dst.index) = result;
        break;
      case DstType::OutputQueue: {
        TaggedQueue *queue = outputs_.at(inst.dst.index);
        panicIf(queue == nullptr, "enqueue to unbound output queue");
        queue->push({result, inst.outTag});
        panicIf(pendingEnq_.at(inst.dst.index) == 0,
                "enqueue accounting underflow");
        --pendingEnq_.at(inst.dst.index);
        ++counters_.enqueues;
        break;
      }
      case DstType::Predicate: {
        const bool actual = (result & 1u) != 0;
        const std::uint64_t bit = std::uint64_t{1} << inst.dst.index;
        ++counters_.predicateWrites;
        if (entry.isPredictor) {
            panicIf(specContexts_.empty() ||
                        specContexts_.front().id != entry.id,
                    "predictor retired outside its speculation window");
            predictor_.train(inst.dst.index, actual);
            if (actual == entry.predictedValue) {
                // Confirmed: this (oldest) context retires; everything
                // issued under it sheds one speculation level.
                specContexts_.erase(specContexts_.begin());
                for (auto &slot : slots_) {
                    if (slot.has_value() && slot->specLevel > 0)
                        --slot->specLevel;
                }
            } else {
                ++counters_.mispredictions;
                if (entry.faultFlipped)
                    ++counters_.faultRecoveries;
                // Everything younger — including any nested
                // predictions and their contexts — is wrong-path.
                preds_ = specContexts_.front().fallbackPreds;
                preds_ = (preds_ & ~bit) | (actual ? bit : 0);
                flushSpeculative();
                specContexts_.clear();
                // The squash also claims this cycle's issue slot: the
                // restored predicate state only steers the front end
                // from the next cycle on.
                squashIssueThisCycle_ = true;
            }
        } else {
            panicIf(config_.predictPredicates &&
                        config_.shape.depth() > 1,
                    "unpredicted predicate write under +P");
            // Commits at the end of this cycle; the scheduler keeps
            // seeing the bit as pending until then.
            panicIf(pendingPredCommit_.has_value(),
                    "two predicate writebacks in one cycle");
            pendingPredCommit_ = PredCommit{inst.dst.index, actual};
        }
        break;
      }
    }
    ++counters_.retired;
}

void
PipelinedPe::issue()
{
    if (squashIssueThisCycle_) {
        ++counters_.quashed;
        return;
    }
    if (haltIssued_) {
        // Scheduler is off while the halt drains.
        ++counters_.noTrigger;
        return;
    }
    if (slots_[0].has_value()) {
        // The only stall source in these pipelines is a register
        // dependence holding an instruction in its decode segment.
        ++counters_.dataHazard;
        return;
    }

    std::uint64_t pending_mask = 0;
    for (unsigned p = 0; p < params_.numPreds; ++p) {
        if (pendingPredWrites_[p] > 0)
            pending_mask |= std::uint64_t{1} << p;
    }

    CycleQueueView view(*this);
    const ScheduleResult result =
        schedule(program_, preds_, pending_mask, view);
    if (result.outcome == ScheduleOutcome::BlockedOnPredicate) {
        ++counters_.predicateHazard;
        return;
    }
    if (result.outcome == ScheduleOutcome::None) {
        ++counters_.noTrigger;
        return;
    }

    const Instruction &inst = program_[result.index];
    if (specActive()) {
        // During unconfirmed speculation, pre-retirement side effects
        // are always barred; a further prediction is barred unless
        // nested speculation (+N) is on and a context slot remains.
        const bool nested_ok =
            config_.nestedSpeculation &&
            specContexts_.size() < kMaxNestedSpeculation;
        if (inst.hasPreRetirementSideEffect() || opInfo(inst.op).isHalt ||
            (inst.writesPredicate() && !nested_ok)) {
            ++counters_.forbidden;
            return;
        }
    }

    InFlight entry;
    entry.inst = &inst;
    entry.index = result.index;
    entry.id = nextId_++;
    entry.specLevel = static_cast<unsigned>(specContexts_.size());

    // Trigger-time predicate update applies at issue.
    preds_ = (preds_ | inst.predSet) & ~inst.predClear;

    if (inst.writesPredicate()) {
        const bool predict =
            config_.predictPredicates && config_.shape.depth() > 1;
        if (predict) {
            entry.isPredictor = true;
            bool predicted = predictor_.predict(inst.dst.index);
            if (faultInjector_ && faultInjector_->flipPrediction(peId_)) {
                predicted = !predicted;
                entry.faultFlipped = true;
                ++counters_.faultsInjected;
            }
            entry.predictedValue = predicted;
            specContexts_.push_back({entry.id, preds_});
            const std::uint64_t bit = std::uint64_t{1} << inst.dst.index;
            preds_ = (preds_ & ~bit) | (predicted ? bit : 0);
            ++counters_.predictions;
        } else {
            ++pendingPredWrites_.at(inst.dst.index);
        }
    }

    for (auto q : inst.dequeues)
        ++pendingDeq_.at(q);
    if (inst.enqueues())
        ++pendingEnq_.at(inst.dst.index);
    if (opInfo(inst.op).isHalt)
        haltIssued_ = true;

    slots_[0] = entry;

    // Segment-0 work happens in the issue cycle.
    if (segD() == 0) {
        if (!dataHazardFor(inst, slots_[0]->id))
            doDecode(*slots_[0]);
        // else: stall in slot 0; retried next cycle.
    }
    if (lastSeg() == 0)
        doWriteback(*slots_[0]);
}

void
PipelinedPe::step()
{
    if (halted_)
        return;
    ++counters_.cycles;

    // (a) Work pass, oldest first so forwarding sees this cycle's
    // writebacks.
    for (int s = static_cast<int>(lastSeg()); s >= 0; --s) {
        auto &slot = slots_[s];
        if (!slot.has_value())
            continue;
        if (static_cast<unsigned>(s) == segD() && !slot->didD) {
            if (!dataHazardFor(*slot->inst, slot->id))
                doDecode(*slot);
        }
        if (static_cast<unsigned>(s) == lastSeg() && slot->didD)
            doWriteback(*slot);
    }

    // (b) Trigger phase: issue (or attribute the lost cycle).
    issue();

    // (c) Advance. Retire writeback-complete instructions, then move
    // everything whose segment work is done and whose next slot is
    // free.
    if (slots_[lastSeg()].has_value() && slots_[lastSeg()]->didD)
        slots_[lastSeg()].reset();
    for (int s = static_cast<int>(lastSeg()) - 1; s >= 0; --s) {
        auto &slot = slots_[s];
        if (!slot.has_value())
            continue;
        const bool work_done =
            static_cast<unsigned>(s) != segD() || slot->didD;
        if (work_done && !slots_[s + 1].has_value()) {
            slots_[s + 1] = *slot;
            slot.reset();
        }
    }

    // (d) Clock edge: commit this cycle's datapath predicate write.
    if (pendingPredCommit_.has_value()) {
        const std::uint64_t bit = std::uint64_t{1}
                                  << pendingPredCommit_->index;
        preds_ = (preds_ & ~bit) | (pendingPredCommit_->value ? bit : 0);
        panicIf(pendingPredWrites_.at(pendingPredCommit_->index) == 0,
                "predicate-write accounting underflow");
        --pendingPredWrites_.at(pendingPredCommit_->index);
        pendingPredCommit_.reset();
    }
    squashIssueThisCycle_ = false;
}

} // namespace tia
