#include "uarch/pipelined_pe.hh"

#include <bit>

#include "core/logging.hh"
#include "core/opcode.hh"
#include "sim/fault.hh"

namespace tia {

QueueStatusWords
PipelinedPe::computeStatusWords() const
{
    // Each queue any trigger cares about is inspected exactly once per
    // cycle; schedule() then needs only mask compares per instruction.
    QueueStatusWords status;
    for (std::uint32_t rest = usedInputs_; rest != 0; rest &= rest - 1) {
        const unsigned q = static_cast<unsigned>(std::countr_zero(rest));
        if (schedInputOccupancy(q) == 0)
            continue;
        const auto tag = schedInputHeadTag(q);
        panicIf(!tag.has_value(),
                "effectively non-empty queue without a peekable head");
        status.inputReady |= std::uint32_t{1} << q;
        status.headTag[q] = *tag;
    }
    for (std::uint32_t rest = usedOutputs_; rest != 0; rest &= rest - 1) {
        const unsigned q = static_cast<unsigned>(std::countr_zero(rest));
        if (schedOutputHasSpace(q))
            status.outputSpace |= std::uint32_t{1} << q;
    }
    return status;
}

/**
 * Diagnostic adapter exposing the PE's scheduler queue status through
 * the abstract QueueStatusView interface (used by queueWaits and the
 * scheduler-equivalence tests; the issue path uses computeStatusWords).
 */
class CycleQueueView : public QueueStatusView
{
  public:
    explicit CycleQueueView(const PipelinedPe &pe) : pe_(pe) {}

    unsigned
    inputOccupancy(unsigned q) const override
    {
        return pe_.schedInputOccupancy(q);
    }

    std::optional<Tag>
    inputHeadTag(unsigned q) const override
    {
        return pe_.schedInputHeadTag(q);
    }

    bool
    outputHasSpace(unsigned q) const override
    {
        return pe_.schedOutputHasSpace(q);
    }

  private:
    const PipelinedPe &pe_;
};

PipelinedPe::PipelinedPe(const ArchParams &params, const PeConfig &config,
                         std::vector<Instruction> program)
    : params_(params), config_(config), program_(std::move(program)),
      regs_(params.numRegs, 0), scratchpad_(params.scratchpadWords, 0),
      pendingDeq_(params.numInputQueues, 0),
      pendingEnq_(params.numOutputQueues, 0),
      pendingPredWrites_(params.numPreds, 0), predictor_(params.numPreds),
      inputs_(params.numInputQueues, nullptr),
      outputs_(params.numOutputQueues, nullptr)
{
    fatalIf(program_.size() > params_.numInstructions,
            "program exceeds the PE instruction store");
    fatalIf(config_.nestedSpeculation && !config_.predictPredicates,
            "nested speculation (+N) requires predicate prediction (+P)");
    // validate() bounds every register, queue and predicate index an
    // instruction can name, so the per-cycle paths below index the
    // per-PE arrays without range checks.
    for (const auto &inst : program_)
        inst.validate(params_);
    triggerDescs_ = compileTriggerDescs(program_);
    for (const auto &desc : triggerDescs_) {
        usedInputs_ |= desc.inputNeed;
        usedOutputs_ |= desc.outputNeed;
    }

    // Resolution-cache dependence maps: which descriptors must be
    // re-evaluated when a given queue's status bit changes. Every tag
    // check's queue is already folded into inputNeed by the compiler
    // (scheduler.hh), so inputNeed/outputNeed are the full queue
    // dependence sets. The memo masks are single words; stores beyond
    // 64 slots simply never arm the cache (setResolutionCacheEnabled).
    inQueueDescs_.assign(params_.numInputQueues, 0);
    outQueueDescs_.assign(params_.numOutputQueues, 0);
    if (triggerDescs_.size() <= 64) {
        for (std::size_t i = 0; i < triggerDescs_.size(); ++i) {
            const TriggerDesc &desc = triggerDescs_[i];
            if (!desc.valid)
                continue;
            const std::uint64_t bit = std::uint64_t{1} << i;
            for (std::uint32_t rest = desc.inputNeed; rest != 0;
                 rest &= rest - 1) {
                inQueueDescs_[std::countr_zero(rest)] |= bit;
            }
            for (std::uint32_t rest = desc.outputNeed; rest != 0;
                 rest &= rest - 1) {
                outQueueDescs_[std::countr_zero(rest)] |= bit;
            }
            // Seed against the zeroed memo: descriptors with no queue
            // dependences are constantly queue-eligible and are never
            // revisited by refreshResolutionInputs.
            if (queueConditionsHold(desc, statusWords_))
                queueOkMask_ |= bit;
        }
    }
    dirtyInputs_ = usedInputs_;
    dirtyOutputs_ = usedOutputs_;
}

void
PipelinedPe::bindInput(unsigned port, TaggedQueue *queue)
{
    inputs_.at(port) = queue;
}

void
PipelinedPe::bindOutput(unsigned port, TaggedQueue *queue)
{
    outputs_.at(port) = queue;
}

void
PipelinedPe::trace(TraceEventKind kind, std::uint8_t arg,
                   std::uint16_t index, std::uint64_t value) const
{
    trace_->record(
        {counters_.cycles - 1, traceId_, kind, arg, index, value});
}

void
PipelinedPe::traceBucket(TraceBucket bucket) const
{
    trace(TraceEventKind::Attribution, static_cast<std::uint8_t>(bucket));
}

ScheduleResult
PipelinedPe::scheduleReference() const
{
    // Equivalence-pinned slow path (see setUseReferenceScheduler).
    return schedule(program_, preds_, pendingPredMask_,
                    CycleQueueView(*this));
}

void
PipelinedPe::traceSkippedCycles(std::uint64_t n) const
{
    // Retroactive settlement: the first skipped cycle is the one after
    // the last counted cycle. Still in per-PE cycle order (see the
    // ordering note in obs/trace.hh).
    for (std::uint64_t i = 0; i < n; ++i) {
        trace_->record({counters_.cycles + i, traceId_,
                        TraceEventKind::Attribution,
                        static_cast<std::uint8_t>(TraceBucket::NoTrigger),
                        0, 0});
    }
}

void
PipelinedPe::setRegs(const std::vector<Word> &values)
{
    fatalIf(values.size() > regs_.size(),
            "initial register set larger than the register file");
    for (std::size_t i = 0; i < values.size(); ++i)
        regs_[i] = values[i];
}

unsigned
PipelinedPe::inFlight() const
{
    return static_cast<unsigned>(std::popcount(occupied_));
}

PeWaitInfo
PipelinedPe::queueWaits() const
{
    PeWaitInfo info;
    if (halted_)
        return info;

    CycleQueueView view(*this);
    // Dedup with seen-bitmasks (queue indices are below 32 by
    // construction) but append in first-encounter order so the report
    // — and the wait-for graph built from it — is stable.
    std::uint32_t seen_inputs = 0;
    std::uint32_t seen_outputs = 0;
    auto note_input = [&](unsigned q) {
        const std::uint32_t bit = std::uint32_t{1} << q;
        if ((seen_inputs & bit) == 0) {
            seen_inputs |= bit;
            info.waitInputs.push_back(q);
        }
    };

    for (const auto &inst : program_) {
        if (!inst.trigger.valid)
            continue;
        // Only instructions whose predicate condition currently holds
        // can be *waiting* on queues; the rest are simply not eligible.
        if ((inst.trigger.predOn & ~preds_) != 0 ||
            (inst.trigger.predOff & preds_) != 0) {
            continue;
        }
        info.predicateEligible = true;
        if (queueConditionsHold(inst, view)) {
            info.canFire = true;
            continue;
        }
        // Collect every failing queue condition: empty (or wrong-tag)
        // inputs and full outputs.
        for (const auto &check : inst.trigger.queueChecks) {
            const auto tag = view.inputHeadTag(check.queue);
            if (view.inputOccupancy(check.queue) == 0 || !tag ||
                (*tag == check.tag) == check.negate) {
                note_input(check.queue);
            }
        }
        for (const auto &src : inst.srcs) {
            if (src.type == SrcType::InputQueue &&
                view.inputOccupancy(src.index) == 0) {
                note_input(src.index);
            }
        }
        for (auto q : inst.dequeues) {
            if (view.inputOccupancy(q) == 0)
                note_input(q);
        }
        if (inst.dst.type == DstType::OutputQueue &&
            !view.outputHasSpace(inst.dst.index)) {
            const std::uint32_t bit = std::uint32_t{1} << inst.dst.index;
            if ((seen_outputs & bit) == 0) {
                seen_outputs |= bit;
                info.waitOutputs.push_back(inst.dst.index);
            }
        }
    }
    return info;
}

bool
PipelinedPe::dataHazardFor(const Instruction &inst, std::uint64_t id) const
{
    // An older producer at segment s_p writes back at now + (last -
    // s_p); the consumer's first execute phase runs at now + (segX1 -
    // segD). The operand must be registered strictly before that
    // cycle, so a hazard exists iff s_p <= last - (segX1 - segD).
    // With a unified X this threshold excludes every older in-flight
    // position, making split-ALU shapes the only ones with register
    // hazards (one bubble each).
    const unsigned threshold = lastSeg() - (segX1() - segD());
    for (unsigned s = 0; s < config_.shape.depth(); ++s) {
        const auto &slot = slots_[s];
        if (!slot.has_value() || slot->id >= id)
            continue;
        if (s > threshold)
            continue;
        const Instruction &producer = *slot->inst;
        if (producer.dst.type != DstType::Reg)
            continue;
        for (const auto &src : inst.srcs) {
            if (src.type == SrcType::Reg &&
                src.index == producer.dst.index) {
                return true;
            }
        }
    }
    return false;
}

Word
PipelinedPe::readSource(const Source &src, Word imm) const
{
    switch (src.type) {
      case SrcType::None:
        return 0;
      case SrcType::Reg:
        return regs_[src.index];
      case SrcType::InputQueue: {
        const TaggedQueue *queue = inputs_[src.index];
        panicIf(queue == nullptr, "read of unbound input queue");
        const Token *token = queue->peekPtr(0);
        panicIf(token == nullptr,
                "read of empty input queue — a hazard check failed");
        return token->data;
      }
      case SrcType::Immediate:
        return imm;
    }
    panic("readSource: bad source type");
}

void
PipelinedPe::doDecode(InFlight &entry)
{
    const Instruction &inst = *entry.inst;
    entry.operands[0] = readSource(inst.srcs[0], inst.imm);
    entry.operands[1] = readSource(inst.srcs[1], inst.imm);
    for (auto q : inst.dequeues) {
        TaggedQueue *queue = inputs_[q];
        panicIf(queue == nullptr, "dequeue of unbound input queue");
        queue->pop();
        panicIf(pendingDeq_[q] == 0, "dequeue accounting underflow");
        --pendingDeq_[q];
        ++counters_.dequeues;
    }
    entry.didD = true;
}

void
PipelinedPe::flushSpeculative()
{
    for (unsigned s = 0; s < slots_.size(); ++s) {
        auto &slot = slots_[s];
        if (!slot.has_value() || !slot->speculative())
            continue;
        const Instruction &inst = *slot->inst;
        panicIf(inst.hasPreRetirementSideEffect(),
                "a side-effecting instruction was issued speculatively");
        if (inst.enqueues()) {
            panicIf(pendingEnq_[inst.dst.index] == 0,
                    "enqueue accounting underflow on flush");
            --pendingEnq_[inst.dst.index];
            // The flushed enqueue frees scheduler-visible space.
            dirtyOutputs_ |= std::uint32_t{1} << inst.dst.index;
            resolutionValid_ = false;
        }
        ++counters_.quashed;
        if (trace_) [[unlikely]]
            trace(TraceEventKind::Quash, 0,
                  static_cast<std::uint16_t>(slot->index), slot->id);
        slot.reset();
        occupied_ &= static_cast<std::uint8_t>(~(1u << s));
    }
}

void
PipelinedPe::doWriteback(InFlight &entry)
{
    const Instruction &inst = *entry.inst;
    panicIf(!entry.didD, "writeback before decode");
    panicIf(entry.speculative(),
            "a speculative instruction reached writeback unresolved");

    const Word a = entry.operands[0];
    const Word b = entry.operands[1];
    const OpInfo &info = opInfo(inst.op);

    Word result = 0;
    if (info.isHalt) {
        halted_ = true;
        if (trace_) [[unlikely]]
            trace(TraceEventKind::Halt);
    } else if (info.readsScratchpad) {
        const Word address = a + b;
        fatalIf(address >= scratchpad_.size(), "scratchpad load at ",
                address, " out of bounds");
        result = scratchpad_[address];
    } else if (info.writesScratchpad) {
        fatalIf(a >= scratchpad_.size(), "scratchpad store at ", a,
                " out of bounds");
        scratchpad_[a] = b;
    } else {
        result = evalAlu(inst.op, a, b);
    }

    switch (inst.dst.type) {
      case DstType::None:
        break;
      case DstType::Reg:
        regs_[inst.dst.index] = result;
        break;
      case DstType::OutputQueue: {
        TaggedQueue *queue = outputs_[inst.dst.index];
        panicIf(queue == nullptr, "enqueue to unbound output queue");
        queue->push({result, inst.outTag});
        panicIf(pendingEnq_[inst.dst.index] == 0,
                "enqueue accounting underflow");
        --pendingEnq_[inst.dst.index];
        ++counters_.enqueues;
        break;
      }
      case DstType::Predicate: {
        const bool actual = (result & 1u) != 0;
        const std::uint64_t bit = std::uint64_t{1} << inst.dst.index;
        ++counters_.predicateWrites;
        if (entry.isPredictor) {
            panicIf(specContexts_.empty() ||
                        specContexts_.front().id != entry.id,
                    "predictor retired outside its speculation window");
            predictor_.train(inst.dst.index, actual);
            if (trace_) [[unlikely]] {
                const bool mispredicted = actual != entry.predictedValue;
                trace(TraceEventKind::Resolve,
                      static_cast<std::uint8_t>(inst.dst.index), 0,
                      (actual ? 1u : 0u) | (mispredicted ? 2u : 0u) |
                          (mispredicted && entry.faultFlipped ? 4u : 0u));
            }
            if (actual == entry.predictedValue) {
                // Confirmed: this (oldest) context retires; everything
                // issued under it sheds one speculation level.
                specContexts_.erase(specContexts_.begin());
                for (auto &slot : slots_) {
                    if (slot.has_value() && slot->specLevel > 0)
                        --slot->specLevel;
                }
            } else {
                ++counters_.mispredictions;
                if (entry.faultFlipped)
                    ++counters_.faultRecoveries;
                // Everything younger — including any nested
                // predictions and their contexts — is wrong-path.
                preds_ = specContexts_.front().fallbackPreds;
                preds_ = (preds_ & ~bit) | (actual ? bit : 0);
                resolutionValid_ = false; // predicate state restored
                flushSpeculative();
                specContexts_.clear();
                // The squash also claims this cycle's issue slot: the
                // restored predicate state only steers the front end
                // from the next cycle on.
                squashIssueThisCycle_ = true;
            }
        } else {
            panicIf(config_.predictPredicates &&
                        config_.shape.depth() > 1,
                    "unpredicted predicate write under +P");
            // Commits at the end of this cycle; the scheduler keeps
            // seeing the bit as pending until then.
            panicIf(pendingPredCommit_.has_value(),
                    "two predicate writebacks in one cycle");
            pendingPredCommit_ = PredCommit{inst.dst.index, actual};
        }
        break;
      }
    }
    ++counters_.retired;
    if (trace_) [[unlikely]] {
        const std::uint8_t flags = inst.dst.type == DstType::Predicate
                                       ? kRetireWrotePredicate
                                       : 0;
        trace(TraceEventKind::Retire, flags,
              static_cast<std::uint16_t>(entry.index), entry.id);
    }
}

void
PipelinedPe::refreshResolutionInputs()
{
    // Re-derive status bits only for queues marked dirty since the
    // last refresh, then re-evaluate only the descriptors depending on
    // a queue whose bits were re-derived. Queues outside the watched
    // sets have no descriptor depending on them.
    const std::uint32_t in = dirtyInputs_ & usedInputs_;
    const std::uint32_t out = dirtyOutputs_ & usedOutputs_;
    if ((in | out) == 0)
        return;
    dirtyInputs_ = 0;
    dirtyOutputs_ = 0;

    std::uint64_t affected = 0;
    for (std::uint32_t rest = in; rest != 0; rest &= rest - 1) {
        const unsigned q = static_cast<unsigned>(std::countr_zero(rest));
        const std::uint32_t bit = std::uint32_t{1} << q;
        if (schedInputOccupancy(q) == 0) {
            statusWords_.inputReady &= ~bit;
        } else {
            const auto tag = schedInputHeadTag(q);
            panicIf(!tag.has_value(),
                    "effectively non-empty queue without a peekable head");
            statusWords_.inputReady |= bit;
            statusWords_.headTag[q] = *tag;
        }
        affected |= inQueueDescs_[q];
    }
    for (std::uint32_t rest = out; rest != 0; rest &= rest - 1) {
        const unsigned q = static_cast<unsigned>(std::countr_zero(rest));
        const std::uint32_t bit = std::uint32_t{1} << q;
        if (schedOutputHasSpace(q))
            statusWords_.outputSpace |= bit;
        else
            statusWords_.outputSpace &= ~bit;
        affected |= outQueueDescs_[q];
    }
    for (std::uint64_t rest = affected; rest != 0; rest &= rest - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(rest));
        const std::uint64_t bit = std::uint64_t{1} << i;
        if (queueConditionsHold(triggerDescs_[i], statusWords_))
            queueOkMask_ |= bit;
        else
            queueOkMask_ &= ~bit;
    }
}

[[gnu::always_inline]] inline ScheduleResult
PipelinedPe::resolveTriggers()
{
    if (referenceScheduler_) [[unlikely]] {
        ++resolution_.fullResolves;
        return scheduleReference();
    }
    if (resolutionValid_) {
        // A kernel-seeded verdict's first consumption accounts as the
        // full resolve the scalar path would have performed here; a
        // seeded *fire* verdict is consumed exactly once (mirroring
        // the no-fire caching policy below).
        if (resolutionSeededFull_) [[unlikely]] {
            resolutionSeededFull_ = false;
            ++resolution_.fullResolves;
            if (cachedResolution_.outcome == ScheduleOutcome::Fire)
                resolutionValid_ = false;
        } else {
            ++resolution_.incrementalSkips;
        }
        return cachedResolution_;
    }
    ++resolution_.fullResolves;
    // Full resolve through stack-local status words, exactly the
    // pre-cache path: for the handful of queues a PE watches this
    // recompute beats the per-queue memo walk (the memo's value is
    // the lane-parallel gather in BatchedFabric, not scalar reuse),
    // and the result is bit-equal to both by the fast-path pinning
    // tests. Only wait verdicts (no trigger / blocked on a pending
    // predicate) are memoized: a fire changes its own resolution
    // inputs at issue more often than not, so caching it buys a skip
    // only in the rare self-invariant-fire loop while costing a dead
    // store on every ordinary fire. With fire verdicts never cached,
    // every fire comes from a full resolve, and the remaining
    // invalidation sources are queue events, predicate commits,
    // speculation repair, and external mutation.
    const ScheduleResult result = schedule(
        triggerDescs_, preds_, pendingPredMask_, computeStatusWords());
    if (resolutionCacheEnabled_ &&
        result.outcome != ScheduleOutcome::Fire) {
        cachedResolution_ = result;
        resolutionValid_ = true;
        resolutionSeededFull_ = false;
    }
    return result;
}

[[gnu::always_inline]] inline void
PipelinedPe::issue()
{
    if (squashIssueThisCycle_) {
        ++counters_.quashed;
        if (trace_) [[unlikely]]
            trace(TraceEventKind::Quash, kQuashIssueSlot);
        return;
    }
    if (haltIssued_) {
        // Scheduler is off while the halt drains.
        ++counters_.noTrigger;
        if (trace_) [[unlikely]]
            traceBucket(TraceBucket::NoTrigger);
        return;
    }
    if ((occupied_ & 1u) != 0) {
        // The only stall source in these pipelines is a register
        // dependence holding an instruction in its decode segment.
        ++counters_.dataHazard;
        if (trace_) [[unlikely]]
            traceBucket(TraceBucket::DataHazard);
        return;
    }

    const ScheduleResult result = resolveTriggers();
    if (result.outcome == ScheduleOutcome::BlockedOnPredicate) {
        ++counters_.predicateHazard;
        if (trace_) [[unlikely]]
            traceBucket(TraceBucket::PredicateHazard);
        return;
    }
    if (result.outcome == ScheduleOutcome::None) {
        ++counters_.noTrigger;
        idleCycle_ = true;
        if (trace_) [[unlikely]]
            traceBucket(TraceBucket::NoTrigger);
        return;
    }

    const Instruction &inst = program_[result.index];
    if (specActive()) {
        // During unconfirmed speculation, pre-retirement side effects
        // are always barred; a further prediction is barred unless
        // nested speculation (+N) is on and a context slot remains.
        const bool nested_ok =
            config_.nestedSpeculation &&
            specContexts_.size() < kMaxNestedSpeculation;
        if (inst.hasPreRetirementSideEffect() || opInfo(inst.op).isHalt ||
            (inst.writesPredicate() && !nested_ok)) {
            ++counters_.forbidden;
            if (trace_) [[unlikely]]
                traceBucket(TraceBucket::Forbidden);
            return;
        }
    }

    // Construct in place — slot 0 was checked empty above.
    InFlight &entry = slots_[0].emplace();
    occupied_ |= 1u;
    entry.inst = &inst;
    entry.index = result.index;
    entry.id = nextId_++;
    entry.specLevel = static_cast<unsigned>(specContexts_.size());
    if (trace_) [[unlikely]]
        trace(TraceEventKind::Issue,
              static_cast<std::uint8_t>(entry.specLevel),
              static_cast<std::uint16_t>(entry.index), entry.id);

    // Trigger-time predicate update applies at issue.
    preds_ = (preds_ | inst.predSet) & ~inst.predClear;

    if (inst.writesPredicate()) {
        const bool predict =
            config_.predictPredicates && config_.shape.depth() > 1;
        if (predict) {
            entry.isPredictor = true;
            bool predicted = predictor_.predict(inst.dst.index);
            if (faultInjector_ && faultInjector_->flipPrediction(peId_)) {
                predicted = !predicted;
                entry.faultFlipped = true;
                ++counters_.faultsInjected;
            }
            entry.predictedValue = predicted;
            specContexts_.push_back({entry.id, preds_});
            const std::uint64_t bit = std::uint64_t{1} << inst.dst.index;
            preds_ = (preds_ & ~bit) | (predicted ? bit : 0);
            ++counters_.predictions;
            if (trace_) [[unlikely]]
                trace(TraceEventKind::Predict,
                      static_cast<std::uint8_t>(inst.dst.index), 0,
                      (predicted ? 1u : 0u) |
                          (entry.faultFlipped ? 2u : 0u));
        } else {
            ++pendingPredWrites_[inst.dst.index];
            pendingPredMask_ |= std::uint64_t{1} << inst.dst.index;
        }
    }

    std::uint32_t dirty_in = 0;
    for (auto q : inst.dequeues) {
        ++pendingDeq_[q];
        dirty_in |= std::uint32_t{1} << q;
    }
    std::uint32_t dirty_out = 0;
    if (inst.enqueues()) {
        ++pendingEnq_[inst.dst.index];
        dirty_out = std::uint32_t{1} << inst.dst.index;
    }
    if (opInfo(inst.op).isHalt)
        haltIssued_ = true;

    // No cached verdict can survive a fire: fires only come from full
    // resolves (fire verdicts are never cached, and a cached wait
    // verdict cannot fire), so resolutionValid_ is already false here.
    // The pending dequeue/enqueue accounting above did change this
    // PE's scheduler view of those ports, though — mark them stale for
    // the batched kernel's memo gather, which is the only consumer of
    // the per-queue dirty masks. The pop and push performed later in
    // decode/writeback preserve this cycle's view by the
    // pending-accounting symmetry (the channel event re-dirties the
    // port for the next cycle).
    dirtyInputs_ |= dirty_in;
    dirtyOutputs_ |= dirty_out;

    // Segment-0 work happens in the issue cycle.
    if (segD() == 0) {
        if (!dataHazardFor(inst, slots_[0]->id))
            doDecode(*slots_[0]);
        // else: stall in slot 0; retried next cycle.
    }
    if (lastSeg() == 0)
        doWriteback(*slots_[0]);
}

// The two step halves live in always-inline impls so the fused
// scalar step() compiles to the same single-body loop it was before
// the split, while the exported stepWork()/stepIssue() pair keeps the
// staged entry points the batched SoA kernel needs.
[[gnu::always_inline]] inline void
PipelinedPe::stepWorkImpl()
{
    ++counters_.cycles;
    idleCycle_ = false;

    // (a) Work pass, oldest first so forwarding sees this cycle's
    // writebacks. Only the decode and writeback segments ever have
    // per-cycle work, so visit exactly those two (one, when fused)
    // instead of scanning every slot.
    const unsigned d = segD();
    const unsigned last = lastSeg();
    if ((occupied_ >> last) & 1u) {
        InFlight &slot = *slots_[last];
        if (last == d && !slot.didD && !dataHazardFor(*slot.inst, slot.id))
            doDecode(slot);
        if (slot.didD)
            doWriteback(slot);
    }
    if (d != last && ((occupied_ >> d) & 1u) != 0) {
        InFlight &slot = *slots_[d];
        if (!slot.didD && !dataHazardFor(*slot.inst, slot.id))
            doDecode(slot);
    }
}

void
PipelinedPe::stepWork()
{
    stepWorkImpl();
}

[[gnu::always_inline]] inline void
PipelinedPe::stepIssueImpl()
{
    // (b) Trigger phase: issue (or attribute the lost cycle).
    issue();

    // Stage occupancy after issue and before advance: what each
    // pipeline segment held while this cycle's work executed.
    if (trace_ && traceLevel_ == TraceLevel::Cycles) [[unlikely]] {
        for (unsigned s = 0; s <= lastSeg(); ++s) {
            if (slots_[s].has_value())
                trace(TraceEventKind::StageOccupancy,
                      static_cast<std::uint8_t>(s),
                      static_cast<std::uint16_t>(slots_[s]->index),
                      slots_[s]->id);
        }
    }

    // (c) Advance. Retire writeback-complete instructions, then move
    // everything whose segment work is done and whose next slot is
    // free — walking only the occupied slots, oldest first.
    const unsigned last = lastSeg();
    const std::uint8_t last_bit = static_cast<std::uint8_t>(1u << last);
    if ((occupied_ & last_bit) != 0 && slots_[last]->didD) {
        slots_[last].reset();
        occupied_ &= static_cast<std::uint8_t>(~last_bit);
    }
    for (std::uint8_t rest =
             occupied_ & static_cast<std::uint8_t>(last_bit - 1u);
         rest != 0;) {
        const unsigned s = static_cast<unsigned>(std::bit_width(rest)) - 1;
        const std::uint8_t bit = static_cast<std::uint8_t>(1u << s);
        rest &= static_cast<std::uint8_t>(~bit);
        auto &slot = slots_[s];
        const bool work_done = s != segD() || slot->didD;
        if (work_done && (occupied_ & (bit << 1)) == 0) {
            slots_[s + 1] = *slot;
            slot.reset();
            occupied_ = static_cast<std::uint8_t>(
                (occupied_ | (bit << 1)) & ~bit);
        }
    }

    // (d) Clock edge: commit this cycle's datapath predicate write.
    if (pendingPredCommit_.has_value()) {
        const std::uint64_t bit = std::uint64_t{1}
                                  << pendingPredCommit_->index;
        preds_ = (preds_ & ~bit) | (pendingPredCommit_->value ? bit : 0);
        panicIf(pendingPredWrites_[pendingPredCommit_->index] == 0,
                "predicate-write accounting underflow");
        if (--pendingPredWrites_[pendingPredCommit_->index] == 0)
            pendingPredMask_ &= ~bit;
        pendingPredCommit_.reset();
        // Both the predicate value and the pending mask may have
        // changed under the memoized verdict.
        resolutionValid_ = false;
    }
    squashIssueThisCycle_ = false;
}

void
PipelinedPe::stepIssue()
{
    stepIssueImpl();
}

void
PipelinedPe::step()
{
    if (halted_)
        return;
    stepWorkImpl();
    stepIssueImpl();
}

} // namespace tia
