/**
 * @file
 * Speculative predicate unit (+P, paper Section 5.2).
 *
 * One two-bit saturating counter per predicate register. Because
 * triggered programs typically dedicate a predicate to each distinct
 * binary decision, "this bank of predictors becomes a per-branch
 * predictor without the traditional overhead of indexing a bank of
 * predictors via the instruction pointer" (Section 5.4).
 */

#ifndef TIA_UARCH_PREDICTOR_HH
#define TIA_UARCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "core/logging.hh"

namespace tia {

/** A bank of per-predicate two-bit saturating counters. */
class PredicatePredictor
{
  public:
    explicit PredicatePredictor(unsigned num_preds)
        : counters_(num_preds, kWeaklyTaken)
    {
    }

    /** Predicted next value of predicate @p index. */
    bool
    predict(unsigned index) const
    {
        return counters_.at(index) >= kWeaklyTaken;
    }

    /** Train counter @p index with the @p actual outcome. */
    void
    train(unsigned index, bool actual)
    {
        auto &counter = counters_.at(index);
        if (actual) {
            if (counter < kStronglyTaken)
                ++counter;
        } else {
            if (counter > kStronglyNotTaken)
                --counter;
        }
    }

    /** Raw counter state (for tests). */
    std::uint8_t counter(unsigned index) const { return counters_.at(index); }

    /** Reset all counters to weakly taken. */
    void
    reset()
    {
        for (auto &counter : counters_)
            counter = kWeaklyTaken;
    }

    static constexpr std::uint8_t kStronglyNotTaken = 0;
    static constexpr std::uint8_t kWeaklyNotTaken = 1;
    static constexpr std::uint8_t kWeaklyTaken = 2;
    static constexpr std::uint8_t kStronglyTaken = 3;

  private:
    std::vector<std::uint8_t> counters_;
};

} // namespace tia

#endif // TIA_UARCH_PREDICTOR_HH
