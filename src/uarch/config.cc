#include "uarch/config.hh"

namespace tia {

std::string
PipelineShape::name() const
{
    std::string name = "T";
    if (splitTD)
        name += '|';
    name += 'D';
    if (splitDX)
        name += '|';
    if (splitX) {
        name += "X1|X2";
    } else {
        name += 'X';
    }
    return name;
}

std::vector<std::string>
PipelineShape::segmentNames() const
{
    std::vector<std::string> segments;
    std::string current;
    for (char c : name()) {
        if (c == '|') {
            segments.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    segments.push_back(current);
    return segments;
}

const std::array<PipelineShape, 8> &
allShapes()
{
    // Shallow to deep, matching the presentation order of Figure 5.
    static const std::array<PipelineShape, 8> shapes = {{
        {false, false, false}, // TDX (single cycle)
        {false, false, true},  // TDX1|X2
        {false, true, false},  // TD|X
        {true, false, false},  // T|DX
        {false, true, true},   // TD|X1|X2
        {true, false, true},   // T|DX1|X2
        {true, true, false},   // T|D|X
        {true, true, true},    // T|D|X1|X2
    }};
    return shapes;
}

std::string
PeConfig::name() const
{
    std::string name = shape.name();
    std::string suffix;
    if (predictPredicates)
        suffix += "+P";
    if (nestedSpeculation)
        suffix += "+N";
    if (effectiveQueueStatus)
        suffix += "+Q";
    if (!suffix.empty())
        name += " " + suffix;
    return name;
}

std::vector<PeConfig>
allConfigs()
{
    std::vector<PeConfig> configs;
    for (const auto &shape : allShapes()) {
        configs.push_back({shape, false, false});
        configs.push_back({shape, true, false});
        configs.push_back({shape, false, true});
        configs.push_back({shape, true, true});
    }
    return configs;
}

std::vector<PeConfig>
figure5Configs()
{
    std::vector<PeConfig> configs;
    for (const auto &shape : allShapes()) {
        configs.push_back({shape, false, false});
        configs.push_back({shape, true, false});
        configs.push_back({shape, true, true});
    }
    return configs;
}

std::optional<PeConfig>
parseConfigName(const std::string &name)
{
    for (const auto &shape : allShapes()) {
        for (bool p : {false, true}) {
            for (bool q : {false, true}) {
                for (bool n : {false, true}) {
                    if (n && !p)
                        continue;
                    const PeConfig config{shape, p, q, n};
                    if (config.name() == name)
                        return config;
                }
            }
        }
    }
    return std::nullopt;
}

} // namespace tia
