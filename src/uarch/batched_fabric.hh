/**
 * @file
 * Batched lockstep multi-uarch simulation kernel: N CycleFabric lanes
 * executing the same program/config against N different PE
 * microarchitectures, advanced cycle-by-cycle in lockstep by one
 * control loop (docs/batched_sim.md).
 *
 * The batch control plane is structure-of-arrays: the per-lane done
 * mask, run status and trap records live in flat parallel arrays the
 * lockstep loop scans each round, while each lane's architectural
 * state (queues, predicate files, counters, sleep masks) stays inside
 * its own CycleFabric. A lane is advanced through
 * CycleFabric::RunCursor — the exact iteration body scalar run()
 * loops over — so batched execution is bit-identical to running each
 * lane alone by construction: same stop-poll cadence, same
 * halt/quiescence/step-limit classification, same lazy sleep
 * settlement (tests/test_batched_fabric.cc asserts it differentially).
 *
 * Divergent retirement: lanes finish at different cycles (a +P+Q
 * fabric halts long before the baseline). A finished lane parks — its
 * done bit is set and the loop skips it — while the rest of the batch
 * runs on. Fault-injected lanes may also park by trapping
 * (FatalError from a corrupted token escalating to an architectural
 * trap); the trap is recorded per lane instead of unwinding the
 * batch, mirroring the scalar harness's catch-only-when-injected
 * policy. A trap on a clean lane is a harness bug and propagates.
 *
 * What batching buys: one warm control loop drives N fabrics, so the
 * loop bookkeeping (stop polls, progress tracking, halt checks)
 * amortizes across lanes, and the lanes' hot data stays resident
 * while each advances one cycle — the CPI-matrix sweeps of the
 * paper's own methodology (fig5/fig6) are exactly this shape. See
 * docs/batched_sim.md for when it wins and by how much.
 *
 * SoA trigger-resolution kernel: every lane runs the same program, so
 * the compiled TriggerDescs are identical across lanes and only the
 * per-lane *status bits* differ. Each round, after every live clean
 * lane's work pass (CycleFabric staged stepping), the kernel gathers
 * the scheduler status of lanes whose memoized verdict was
 * invalidated into lane-major bitplanes — one uint64_t word per
 * (queue, status-bit) covering 64 lanes — and resolves each
 * descriptor's queue and predicate conditions for all gathered lanes
 * with a handful of word ops, seeding the verdicts back into the PEs'
 * resolution caches. Lanes whose verdict is still valid are never
 * touched (dirty-queue incremental re-resolution); fault-injected
 * lanes keep the plain scalar advance() path (their PEs never arm the
 * cache). Layout diagram and invariants: docs/batched_sim.md.
 */

#ifndef TIA_UARCH_BATCHED_FABRIC_HH
#define TIA_UARCH_BATCHED_FABRIC_HH

#include <memory>
#include <string>
#include <vector>

#include "core/program.hh"
#include "sim/fabric_config.hh"
#include "sim/fault.hh"
#include "sim/functional.hh" // RunStatus
#include "uarch/cycle_fabric.hh"

namespace tia {

/** How one lane of a batched run ended. */
struct BatchedLaneOutcome
{
    /** Final status, as scalar CycleFabric::run would have returned. */
    RunStatus status = RunStatus::StepLimit;
    /**
     * True when a fault-injected lane escalated to an architectural
     * trap (FatalError) instead of finishing; @ref status is then
     * StepLimit and @ref trapMessage carries the diagnostic, matching
     * the scalar fault-run convention in workloads/runner.cc.
     */
    bool trapped = false;
    std::string trapMessage;
};

/** N same-program fabrics advanced in lockstep (one per uarch). */
class BatchedFabric
{
  public:
    /**
     * @param config    fabric wiring, shared by every lane.
     * @param program   assembled program, shared by every lane.
     * @param uarchs    one PE microarchitecture per lane.
     * @param injectors optional per-lane fault injectors (non-owning;
     *                  must outlive the batch). Shorter than @p uarchs
     *                  is padded with nullptr (clean lanes).
     */
    BatchedFabric(const FabricConfig &config, const Program &program,
                  const std::vector<PeConfig> &uarchs,
                  std::vector<FaultInjector *> injectors = {});

    unsigned
    numLanes() const
    {
        return static_cast<unsigned>(lanes_.size());
    }

    /** Lane fabric access (counters, memory, trace — post-run). */
    CycleFabric &lane(unsigned l) { return *lanes_.at(l); }
    const CycleFabric &lane(unsigned l) const { return *lanes_.at(l); }

    /**
     * Run every lane to completion in lockstep: each round advances
     * every live lane by one RunCursor iteration (at most one cycle),
     * parking lanes as they finish. The stop token in @p options is
     * polled per lane on the scalar cadence, so cancellation parks
     * lanes exactly where scalar runs would have stopped. Returns one
     * outcome per lane; lane(l).hangReport() carries the diagnosis.
     */
    std::vector<BatchedLaneOutcome> run(const FabricRunOptions &options);

    /**
     * 64-bit plane operations performed by the SoA kernel across all
     * run() calls (host-side statistic; "bitplane_ops" in metrics).
     */
    std::uint64_t bitplaneOps() const { return bitplaneOps_; }

  private:
    /**
     * One trigger descriptor compiled to plane operations: AND the
     * input-ready/output-space/tag planes into a candidate mask, then
     * combine the predicate and pending planes into fail/blocked
     * masks. Built once per PE from lane 0 (descs are program-derived
     * and lane-invariant); only valid descriptors appear, in priority
     * order.
     */
    struct DescOp
    {
        unsigned index = 0; ///< Instruction-store slot (the verdict index).
        std::vector<unsigned> condPlanes; ///< Planes to AND (in/out/tag).
        std::vector<unsigned> onBits;     ///< predOn bit positions.
        std::vector<unsigned> offBits;    ///< predOff bit positions.
    };

    /** Per-PE bitplane state (lane-major; W words per plane). */
    struct PeKernel
    {
        std::vector<unsigned> inQueues;  ///< Watched input ports.
        std::vector<unsigned> outQueues; ///< Watched output ports.
        /** Descriptor slots with tag checks, one tagOk plane each. */
        std::vector<unsigned> tagDescs;
        std::vector<unsigned> predBits;  ///< Union of predOn/predOff bits.
        std::vector<DescOp> descs;
        /**
         * Plane storage, W words per plane, in layout order:
         * [inReady x inQueues][outSpace x outQueues][tagOk x tagDescs]
         * [pred x predBits][pending x predBits].
         */
        std::vector<std::uint64_t> planes;
        unsigned outBase = 0, tagBase = 0, predBase = 0, pendBase = 0;
    };

    /** Compile the per-PE kernels from lane 0 (no-op for 0 lanes/PEs). */
    void compileKernels();

    /**
     * Gather invalidated (lane, PE) status into the bitplanes, resolve
     * every descriptor across lanes, and seed the verdicts back.
     * @p stepping lists the lanes between stepPeWork and stepPeIssue
     * this round; only those with @ref soaLane_ set participate.
     */
    void resolveAcrossLanes(const std::vector<unsigned> &stepping);

    std::vector<std::unique_ptr<CycleFabric>> lanes_;
    std::vector<FaultInjector *> injectors_;
    /** SoA lane-done mask, rewritten by each run(). */
    std::vector<std::uint8_t> done_;
    /** Lanes the kernel may seed (clean, cache-armed). */
    std::vector<std::uint8_t> soaLane_;
    /** Words per plane: ceil(numLanes / 64). */
    unsigned planeWords_ = 0;
    std::vector<PeKernel> kernels_; ///< One per PE position.
    /** Scratch masks (W words each), reused across rounds. */
    std::vector<std::uint64_t> invalid_, undecided_, scratch_;
    std::uint64_t bitplaneOps_ = 0;
};

} // namespace tia

#endif // TIA_UARCH_BATCHED_FABRIC_HH
