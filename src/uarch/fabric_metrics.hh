/**
 * @file
 * tia-metrics/v1 run entries built from a finished CycleFabric: the
 * bridge between the simulator's live state (counters, hang report,
 * sleep statistics, channel high-water marks) and the structured
 * metrics documents tia-sim and tia-sweep emit (obs/metrics.hh).
 */

#ifndef TIA_UARCH_FABRIC_METRICS_HH
#define TIA_UARCH_FABRIC_METRICS_HH

#include "obs/json.hh"
#include "uarch/cycle_fabric.hh"

namespace tia {

/**
 * Build the per-run metrics object for @p fabric after a run() with
 * final status @p status. Non-const because reading exact counters
 * settles lazily accounted sleep cycles.
 */
JsonValue fabricRunMetrics(CycleFabric &fabric, const PeConfig &uarch,
                           RunStatus status);

} // namespace tia

#endif // TIA_UARCH_FABRIC_METRICS_HH
