/**
 * @file
 * Cycle-accurate spatial fabric: pipelined PEs + channels + memory
 * ports stepped in lockstep with RTL-like update semantics (pushes
 * commit at cycle boundaries; all agents observe consistent state
 * regardless of evaluation order).
 *
 * The fabric doubles as the fault-injection and hang-diagnosis
 * harness: an optional FaultInjector is threaded through every
 * channel, PE and memory port, and run() ends every execution with a
 * HangReport that distinguishes a finished fabric from a deadlocked
 * (wait-for cycle) or livelocked (spinning without progress) one.
 */

#ifndef TIA_UARCH_CYCLE_FABRIC_HH
#define TIA_UARCH_CYCLE_FABRIC_HH

#include <memory>
#include <vector>

#include "core/program.hh"
#include "sim/fabric_config.hh"
#include "sim/fault.hh"
#include "sim/functional.hh" // RunStatus
#include "sim/hang_diagnosis.hh"
#include "sim/memory.hh"
#include "sim/queue.hh"
#include "uarch/pipelined_pe.hh"

namespace tia {

/** Knobs for CycleFabric::run (previously hard-coded defaults). */
struct FabricRunOptions
{
    /** Simulation budget in cycles (core/types.hh, shared default). */
    Cycle maxCycles = kDefaultMaxCycles;
    /**
     * Cycles without retirement or agent activity before the fabric
     * is declared quiescent — and, at the step limit, cycles without
     * observable progress before a run is classified as livelock.
     */
    Cycle quiescenceWindow = kDefaultQuiescenceWindow;
};

/** A full cycle-accurate fabric running one microarchitecture. */
class CycleFabric
{
  public:
    /**
     * @param config   fabric wiring (same object the functional fabric
     *                 takes, enabling equivalence testing).
     * @param program  assembled program.
     * @param uarch    PE microarchitecture used for every PE.
     * @param injector optional fault injector, threaded through every
     *                 channel, PE and memory read port (non-owning;
     *                 must outlive the fabric).
     */
    CycleFabric(const FabricConfig &config, const Program &program,
                const PeConfig &uarch, FaultInjector *injector = nullptr);

    /** Advance one clock cycle. */
    void step();

    /**
     * Run until every PE halts, the fabric goes quiescent (no retire
     * or agent activity for the quiescence window), or the cycle
     * budget elapses. Quiescent and step-limit endings are diagnosed:
     * a wait-for cycle upgrades Quiescent to Deadlock, and a stretch
     * of activity without observable progress upgrades StepLimit to
     * Livelock. hangReport() carries the full diagnosis.
     */
    RunStatus run(const FabricRunOptions &options);

    /** Convenience overload with the historical signature. */
    RunStatus
    run(Cycle max_cycles = kDefaultMaxCycles,
        Cycle quiescence_window = kDefaultQuiescenceWindow)
    {
        return run(FabricRunOptions{max_cycles, quiescence_window});
    }

    /** Diagnosis of how the last run() ended. */
    const HangReport &hangReport() const { return report_; }

    /**
     * Build the wait-for graph and classify the fabric's current
     * state as if it had just gone quiescent (exposed for tools and
     * tests; run() calls this internally).
     */
    HangReport diagnoseQuiescence() const;

    Cycle now() const { return now_; }

    Memory &memory() { return memory_; }
    const Memory &memory() const { return memory_; }

    PipelinedPe &pe(unsigned index) { return *pes_.at(index); }
    const PipelinedPe &pe(unsigned index) const { return *pes_.at(index); }
    unsigned numPes() const { return static_cast<unsigned>(pes_.size()); }

  private:
    bool anyActivity() const;

    /** Total retired instructions across all PEs. */
    std::uint64_t totalRetired() const;

    /** Monotone count of observable progress events (token movement). */
    std::uint64_t tokensMoved() const;

    FabricConfig config_;
    Memory memory_;
    std::vector<std::unique_ptr<TaggedQueue>> channels_;
    std::vector<std::unique_ptr<PipelinedPe>> pes_;
    std::vector<std::unique_ptr<MemoryReadPort>> readPorts_;
    std::vector<std::unique_ptr<MemoryWritePort>> writePorts_;
    FaultInjector *injector_ = nullptr;
    HangReport report_;
    Cycle now_ = 0;
};

} // namespace tia

#endif // TIA_UARCH_CYCLE_FABRIC_HH
