/**
 * @file
 * Cycle-accurate spatial fabric: pipelined PEs + channels + memory
 * ports stepped in lockstep with RTL-like update semantics (pushes
 * commit at cycle boundaries; all agents observe consistent state
 * regardless of evaluation order).
 *
 * The fabric doubles as the fault-injection and hang-diagnosis
 * harness: an optional FaultInjector is threaded through every
 * channel, PE and memory port, and run() ends every execution with a
 * HangReport that distinguishes a finished fabric from a deadlocked
 * (wait-for cycle) or livelocked (spinning without progress) one.
 *
 * Idle-PE sleep/wake: a PE that reports canSleep() — nothing in
 * flight and a provably repeating no-trigger cycle — is parked off
 * the active list and re-stepped only once a channel its triggers
 * watch reports a push or pop (QueueEventLog). Because
 * FabricConfig::validate guarantees exactly one producer and one
 * consumer per channel, a parked PE's scheduler inputs cannot change
 * without such an event, and PE evaluation order within a cycle is
 * unobservable, so parking is invisible to the architecture: cycle
 * counts, per-PE counters and hang reports are bit-identical to
 * stepping every PE every cycle (asserted by tests/test_hot_path.cc).
 * Skipped steps are re-accounted lazily (each is exactly one
 * no-trigger cycle) before any counter observation. A PE whose park
 * decision coincides with activity on a watched channel is kept
 * active instead of parked — it would be woken at the next cycle's
 * start anyway, so parking it is pure churn. Sleep is disabled
 * under fault injection, whose stuck-status windows open and close
 * without queue events.
 *
 * The same event lists make channel upkeep proportional to activity:
 * only channels touched last cycle need a new snapshot (beginCycle)
 * and only channels pushed this cycle need a commit.
 */

#ifndef TIA_UARCH_CYCLE_FABRIC_HH
#define TIA_UARCH_CYCLE_FABRIC_HH

#include <memory>
#include <optional>
#include <vector>

#include "core/program.hh"
#include "exec/stop_token.hh"
#include "obs/trace.hh"
#include "sim/fabric_config.hh"
#include "sim/fault.hh"
#include "sim/functional.hh" // RunStatus
#include "sim/hang_diagnosis.hh"
#include "sim/memory.hh"
#include "sim/queue.hh"
#include "uarch/pipelined_pe.hh"

namespace tia {

/** Knobs for CycleFabric::run (previously hard-coded defaults). */
struct FabricRunOptions
{
    /** Simulation budget in cycles (core/types.hh, shared default). */
    Cycle maxCycles = kDefaultMaxCycles;
    /**
     * Cycles without retirement or agent activity before the fabric
     * is declared quiescent — and, at the step limit, cycles without
     * observable progress before a run is classified as livelock.
     */
    Cycle quiescenceWindow = kDefaultQuiescenceWindow;
    /**
     * Cooperative cancellation (exec/stop_token.hh). Polled every
     * @ref stopCheckInterval cycles; when it fires, run() returns
     * RunStatus::Cancelled promptly with a hang report naming the
     * reason, instead of running out the cycle budget. A detached
     * token (the default) costs nothing on the hot path.
     */
    StopToken stop;
    /** Cycles between stop-token polls (a poll reads the clock). */
    Cycle stopCheckInterval = 4096;
};

/** Host-side execution statistics (see tools/tia_sim --stats). */
struct FabricStepStats
{
    /** PE steps actually executed. */
    std::uint64_t peStepsExecuted = 0;
    /** PE steps skipped by the idle sleep list (accounted lazily). */
    std::uint64_t peStepsSkipped = 0;
};

/** A full cycle-accurate fabric running one microarchitecture. */
class CycleFabric
{
  public:
    /**
     * @param config   fabric wiring (same object the functional fabric
     *                 takes, enabling equivalence testing).
     * @param program  assembled program.
     * @param uarch    PE microarchitecture used for every PE.
     * @param injector optional fault injector, threaded through every
     *                 channel, PE and memory read port (non-owning;
     *                 must outlive the fabric).
     */
    CycleFabric(const FabricConfig &config, const Program &program,
                const PeConfig &uarch, FaultInjector *injector = nullptr);

    /** Advance one clock cycle. */
    void step();

    /**
     * Staged form of step() for the batched SoA trigger-resolution
     * kernel (uarch/batched_fabric.cc): cycle-start events, per-PE
     * work pass, per-PE issue/advance, cycle-end events. Calling the
     * four in order is bit-identical to step() — the scalar path keeps
     * its fused single pass over the active list purely for locality.
     * Between stepPeWork() and stepPeIssue() every active PE's
     * scheduler inputs for this cycle are final (pops and pushes
     * performed by the work pass preserve the pending-accounted view),
     * which is the window the kernel gathers and seeds verdicts in.
     */
    void beginCycleEvents();
    void stepPeWork();
    void stepPeIssue();
    void endCycleEvents();

  private:
    /**
     * Always-inline bodies behind beginCycleEvents/endCycleEvents, so
     * the fused step() keeps both compiled into its own loop body (the
     * out-of-line calls measurably slowed the scalar hot path) while
     * the staged batched entry points stay exported.
     */
    void beginCycleEventsImpl();
    void endCycleEventsImpl();

  public:

    /**
     * Run until every PE halts, the fabric goes quiescent (no retire
     * or agent activity for the quiescence window), or the cycle
     * budget elapses. Quiescent and step-limit endings are diagnosed:
     * a wait-for cycle upgrades Quiescent to Deadlock, and a stretch
     * of activity without observable progress upgrades StepLimit to
     * Livelock. hangReport() carries the full diagnosis.
     */
    RunStatus run(const FabricRunOptions &options);

    /**
     * Resumable form of the run() control loop: each advance() call
     * performs exactly one loop iteration (budget check, stop poll,
     * all-halted check, step, progress/quiescence accounting) and
     * reports the final status once the run ends. run() is a plain
     * loop over advance(); BatchedFabric (batched_fabric.hh)
     * interleaves advance() across lanes so a batched lane executes
     * this exact code path — bit-identity with the scalar path is
     * structural, not re-proved per change.
     */
    class RunCursor
    {
      public:
        RunCursor(CycleFabric &fabric, const FabricRunOptions &options);

        /**
         * One loop iteration. Returns the run's final status once the
         * fabric halts, is cancelled, goes quiescent or exhausts its
         * cycle budget (hangReport() carries the diagnosis), nullopt
         * while the run is still in flight.
         */
        std::optional<RunStatus>
        advance()
        {
            if (const auto status = beginAdvance())
                return status;
            fabric_.step();
            return finishAdvance();
        }

        /**
         * The halves of advance() around the step, so BatchedFabric
         * can interleave the staged step() across lanes: beginAdvance
         * performs the pre-step checks (budget, stop poll, all-halted)
         * and returns the final status if the run is over before
         * stepping; finishAdvance performs the post-step progress and
         * quiescence accounting. advance() is exactly beginAdvance +
         * step + finishAdvance.
         */
        std::optional<RunStatus> beginAdvance();
        std::optional<RunStatus> finishAdvance();

      private:
        CycleFabric &fabric_;
        FabricRunOptions options_;
        std::uint64_t lastRetired_;
        std::uint64_t lastEvents_;
        Cycle lastActivity_;
        Cycle lastProgress_;
        Cycle nextStopCheck_;
    };

    /** Convenience overload with the historical signature. */
    RunStatus
    run(Cycle max_cycles = kDefaultMaxCycles,
        Cycle quiescence_window = kDefaultQuiescenceWindow)
    {
        FabricRunOptions options;
        options.maxCycles = max_cycles;
        options.quiescenceWindow = quiescence_window;
        return run(options);
    }

    /** Diagnosis of how the last run() ended. */
    const HangReport &hangReport() const { return report_; }

    /**
     * Build the wait-for graph and classify the fabric's current
     * state as if it had just gone quiescent (exposed for tools and
     * tests; run() calls this internally).
     */
    HangReport diagnoseQuiescence() const;

    Cycle now() const { return now_; }

    Memory &memory() { return memory_; }
    const Memory &memory() const { return memory_; }

    /**
     * PE access. The non-const overload wakes a sleeping PE first:
     * callers may mutate state (predicates, registers) the sleep
     * criterion depended on. Both overloads settle the PE's lazily
     * accounted sleep cycles so counters read exact.
     */
    PipelinedPe &
    pe(unsigned index)
    {
        wakePe(index);
        return *pes_.at(index);
    }

    const PipelinedPe &
    pe(unsigned index) const
    {
        if (asleep_[index])
            syncSleepCounters(index);
        return *pes_.at(index);
    }

    unsigned numPes() const { return static_cast<unsigned>(pes_.size()); }

    unsigned
    numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /** Channel access (e.g. high-water marks for metrics). */
    const TaggedQueue &channel(unsigned ch) const { return *channels_[ch]; }

    /**
     * Install (or clear, with nullptr) a trace sink on the fabric and
     * every PE. The fabric contributes park/wake instants and (at
     * Cycles level) end-of-cycle queue depths; the PEs contribute the
     * issue-slot, predictor and stage events (see obs/trace.hh).
     * Idle-PE sleep stays enabled under tracing — a parked PE's
     * skipped cycles surface as retroactive no-trigger attributions at
     * settlement, keeping trace-derived counters bit-identical.
     */
    void setTraceSink(TraceSink *sink,
                      TraceLevel level = TraceLevel::Events);

    /**
     * Route every PE's trigger resolution through the virtual
     * QueueStatusView reference scheduler (bit-identical to the mask
     * fast path; see PipelinedPe::setUseReferenceScheduler).
     */
    void
    setUseReferenceScheduler(bool enabled)
    {
        for (auto &pe : pes_)
            pe->setUseReferenceScheduler(enabled);
    }

    /**
     * Enable/disable idle-PE sleep (enabled by default without a fault
     * injector; always off with one). Disabling wakes every parked PE;
     * results are identical either way — the knob exists for the
     * equivalence tests and for profiling.
     */
    void setIdleSleepEnabled(bool enabled);

    /** Host-side step accounting (settles lazy sleep debt). */
    FabricStepStats
    stepStats() const
    {
        flushSleepDebt();
        return {stepsExecuted_, stepsSkipped_};
    }

    /**
     * Aggregate trigger-resolution accounting across PEs (sleep debt
     * needs no settlement: skipped cycles perform no resolution).
     */
    ResolutionStats
    resolutionStats() const
    {
        ResolutionStats total;
        for (const auto &pe : pes_)
            total += pe->resolutionStats();
        return total;
    }

    /** The PEs currently stepping (awake, unhalted), for the kernel. */
    const std::vector<unsigned> &activePes() const { return activePes_; }

    /** Direct PE access without wake/settle (batched kernel only). */
    PipelinedPe &peRaw(unsigned index) { return *pes_[index]; }

  private:
    bool anyActivity() const;

    /**
     * Re-activate PE @p index if parked, settling its sleep debt.
     * Inline no-op for awake PEs — wake subscriptions fire on every
     * watched-channel event, parked or not.
     */
    void
    wakePe(unsigned index)
    {
        if (asleep_[index])
            wakeParkedPe(index);
    }

    /** Out-of-line slow half of wakePe(). */
    void wakeParkedPe(unsigned index);

    /**
     * Account the cycles PE @p index slept through since its last
     * executed step: each is exactly one no-trigger cycle.
     */
    void syncSleepCounters(unsigned index) const;

    /** Settle the sleep debt of every parked PE (before observation). */
    void flushSleepDebt() const;

    /**
     * Out-of-line cold emission for the fabric's own trace events
     * (park/wake, end-of-cycle queue depths) — keeps the `if (trace_)`
     * guards in step() down to a test plus a call to a cold section.
     */
    [[gnu::cold, gnu::noinline]] void
    traceEvent(std::uint32_t pe, TraceEventKind kind,
               std::uint16_t index = 0, std::uint64_t value = 0) const;

    /** Cold end-of-cycle queue-depth samples (`cycles` level only). */
    [[gnu::cold, gnu::noinline]] void traceQueueDepths() const;

    FabricConfig config_;
    Memory memory_;
    std::vector<std::unique_ptr<TaggedQueue>> channels_;
    std::vector<std::unique_ptr<PipelinedPe>> pes_;
    std::vector<std::unique_ptr<MemoryReadPort>> readPorts_;
    std::vector<std::unique_ptr<MemoryWritePort>> writePorts_;
    FaultInjector *injector_ = nullptr;
    HangReport report_;
    Cycle now_ = 0;

    // Sleep/wake machinery.
    bool sleepEnabled_ = true;
    std::vector<unsigned> activePes_;     ///< Awake, unhalted PEs.
    std::vector<std::uint8_t> asleep_;    ///< Parked flag, per PE.
    /** Cycle of each PE's last executed (or accounted) step. */
    mutable std::vector<Cycle> sleepSince_;
    /**
     * One wake/invalidate subscription: a PE whose triggers watch a
     * channel, with the PE-side port bits the channel is bound to, so
     * a dirty channel marks exactly those queue status bits stale in
     * the PE's resolution cache.
     */
    struct ChannelWatcher
    {
        unsigned pe;
        std::uint32_t inPorts;  ///< Watched input ports fed by the channel.
        std::uint32_t outPorts; ///< Watched output ports into the channel.
    };
    /** Channel -> watchers (wake + cache-invalidate subscriptions). */
    std::vector<std::vector<ChannelWatcher>> channelPes_;
    /** PE -> channels its triggers watch (inverse subscriptions). */
    std::vector<std::vector<unsigned>> peChannels_;
    /** PEs whose park decision is pending until the cycle ends. */
    std::vector<unsigned> parkCandidates_;

    /**
     * Channel activity, recorded inline by the queues (see queue.hh).
     * Dirty channels need beginCycle + wake at the next cycle's start;
     * pushed channels need a commit at this cycle's end.
     */
    QueueEventLog events_;

    // Incremental run() accounting.
    std::uint64_t totalRetired_ = 0; ///< Sum of per-PE retired.
    unsigned haltedPes_ = 0;
    unsigned activeBusyPes_ = 0;       ///< Busy PEs after the last step.

    // Host-side statistics.
    std::uint64_t stepsExecuted_ = 0;
    mutable std::uint64_t stepsSkipped_ = 0;

    /** Per-PE retired count at stepPeWork entry (staged mode only). */
    std::vector<std::uint64_t> retiredAtWork_;

    // Observability (optional, non-owning). Last on purpose: the hot
    // step loop touches the members above every cycle, and inserting
    // fields ahead of them shifts their offsets across cache lines.
    TraceSink *trace_ = nullptr;
    TraceLevel traceLevel_ = TraceLevel::Events;
};

} // namespace tia

#endif // TIA_UARCH_CYCLE_FABRIC_HH
