/**
 * @file
 * Cycle-accurate spatial fabric: pipelined PEs + channels + memory
 * ports stepped in lockstep with RTL-like update semantics (pushes
 * commit at cycle boundaries; all agents observe consistent state
 * regardless of evaluation order).
 */

#ifndef TIA_UARCH_CYCLE_FABRIC_HH
#define TIA_UARCH_CYCLE_FABRIC_HH

#include <memory>
#include <vector>

#include "core/program.hh"
#include "sim/fabric_config.hh"
#include "sim/functional.hh" // RunStatus
#include "sim/memory.hh"
#include "sim/queue.hh"
#include "uarch/pipelined_pe.hh"

namespace tia {

/** A full cycle-accurate fabric running one microarchitecture. */
class CycleFabric
{
  public:
    /**
     * @param config  fabric wiring (same object the functional fabric
     *                takes, enabling equivalence testing).
     * @param program assembled program.
     * @param uarch   PE microarchitecture used for every PE.
     */
    CycleFabric(const FabricConfig &config, const Program &program,
                const PeConfig &uarch);

    /** Advance one clock cycle. */
    void step();

    /**
     * Run until every PE halts, the fabric goes quiescent (no retire
     * or memory activity for @p quiescence_window cycles), or
     * @p max_cycles elapse.
     */
    RunStatus run(Cycle max_cycles = 50'000'000,
                  Cycle quiescence_window = 10'000);

    Cycle now() const { return now_; }

    Memory &memory() { return memory_; }
    const Memory &memory() const { return memory_; }

    PipelinedPe &pe(unsigned index) { return *pes_.at(index); }
    const PipelinedPe &pe(unsigned index) const { return *pes_.at(index); }
    unsigned numPes() const { return static_cast<unsigned>(pes_.size()); }

  private:
    bool anyActivity() const;

    FabricConfig config_;
    Memory memory_;
    std::vector<std::unique_ptr<TaggedQueue>> channels_;
    std::vector<std::unique_ptr<PipelinedPe>> pes_;
    std::vector<std::unique_ptr<MemoryReadPort>> readPorts_;
    std::vector<std::unique_ptr<MemoryWritePort>> writePorts_;
    Cycle now_ = 0;
};

} // namespace tia

#endif // TIA_UARCH_CYCLE_FABRIC_HH
