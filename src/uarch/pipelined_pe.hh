/**
 * @file
 * Cycle-accurate pipelined triggered PE (paper Sections 4 and 5).
 *
 * One class models all eight stage partitions (TDX ... T|D|X1|X2) with
 * the two hazard mitigations independently togglable:
 *
 *  - Without +P, an in-flight datapath predicate write makes dependent
 *    triggers unresolvable; the front end stalls (predicate hazard)
 *    whenever the highest-priority possibly-eligible trigger depends on
 *    a pending predicate bit.
 *  - With +P, a two-bit-counter prediction resolves the bit at issue;
 *    nested speculation is not supported, and instructions with
 *    pre-retirement side effects (dequeues, scratchpad stores, halt)
 *    are forbidden while speculation is unconfirmed. Misprediction
 *    flushes the younger in-flight instructions and restores the saved
 *    predicate state.
 *  - Without +Q, queues with in-flight dequeues are conservatively
 *    treated as empty and queues with in-flight enqueues as full (the
 *    RAW-style discipline cited in Section 5.3). With +Q, the scheduler
 *    subtracts in-flight dequeues from input occupancy (peeking at the
 *    "head and neck" for tags) and adds in-flight enqueues to output
 *    occupancy.
 *
 * Phase timing: trigger work (scheduling, trigger-time predicate
 * update, prediction) happens in the segment containing T; operand
 * capture with full forwarding plus dequeues happen in the segment
 * containing D (dequeues were "moved to decode" per Section 5.4);
 * results, enqueues and datapath predicate writes commit at the end of
 * the segment containing X (or X2). Back-to-back register dependences
 * therefore cost one bubble exactly in the split-ALU (X1|X2) shapes.
 */

#ifndef TIA_UARCH_PIPELINED_PE_HH
#define TIA_UARCH_PIPELINED_PE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/program.hh"
#include "obs/trace.hh"
#include "sim/queue.hh"
#include "sim/scheduler.hh"
#include "uarch/config.hh"
#include "uarch/counters.hh"
#include "uarch/predictor.hh"

namespace tia {

class FaultInjector;

/**
 * Why a PE cannot fire this cycle, from the scheduler's own queue
 * view: the input/output ports its predicate-eligible instructions
 * are blocked on. Feeds the wait-for graph of sim/hang_diagnosis.hh.
 */
struct PeWaitInfo
{
    /** Some instruction's predicate condition matches current state. */
    bool predicateEligible = false;
    /** Some instruction could fire right now (not actually blocked). */
    bool canFire = false;
    /** Input ports whose queues are empty or hold the wrong tag. */
    std::vector<unsigned> waitInputs;
    /** Output ports whose queues have no space. */
    std::vector<unsigned> waitOutputs;

    bool blocked() const
    {
        return predicateEligible && !canFire &&
               (!waitInputs.empty() || !waitOutputs.empty());
    }
};

/** A cycle-accurate triggered PE with a configurable pipeline. */
class PipelinedPe
{
  public:
    PipelinedPe(const ArchParams &params, const PeConfig &config,
                std::vector<Instruction> program);

    void bindInput(unsigned port, TaggedQueue *queue);
    void bindOutput(unsigned port, TaggedQueue *queue);
    void setRegs(const std::vector<Word> &values);

    void
    setPreds(std::uint64_t preds)
    {
        preds_ = preds;
        resolutionValid_ = false;
    }

    /** Install a fault injector; @p id names this PE in the plan. */
    void
    setFaultInjector(FaultInjector *injector, unsigned id)
    {
        faultInjector_ = injector;
        peId_ = id;
    }

    /**
     * Install (or clear, with nullptr) a trace sink; @p id names this
     * PE in the event stream. Every counter increment then emits one
     * event at the incrementing statement (see obs/trace.hh); with no
     * sink the emission sites cost one null test each.
     */
    void
    setTraceSink(TraceSink *sink, TraceLevel level, unsigned id)
    {
        trace_ = sink;
        traceLevel_ = level;
        traceId_ = id;
    }

    /**
     * Route trigger resolution through the virtual QueueStatusView
     * reference scheduler instead of the compiled mask fast path. The
     * two are bit-identical (tests/test_hot_path.cc); the runtime
     * switch lets the observability tests cross-check trace-derived
     * counters against both implementations end to end.
     */
    void
    setUseReferenceScheduler(bool enabled)
    {
        referenceScheduler_ = enabled;
    }

    /** Diagnose what (if anything) this PE is blocked on. */
    PeWaitInfo queueWaits() const;

    /**
     * Advance one clock cycle. No-op once halted. Defined out of line
     * so the fused scalar path compiles both halves into one body —
     * the un-fused header version measurably slowed the hot loop.
     */
    void step();

    /**
     * The two halves of step(), exposed so BatchedFabric can run its
     * SoA trigger-resolution kernel between every lane's work pass and
     * issue phase (docs/batched_sim.md). Callers must pair them, in
     * order, and must not call either on a halted PE; a halt retiring
     * inside stepWork() still requires the matching stepIssue() —
     * exactly what the fused step() does.
     */
    void stepWork();
    void stepIssue();

    /**
     * True when stepping this PE again with unchanged queue status
     * would provably repeat a do-nothing cycle: nothing in flight, no
     * unresolved speculation or pending predicate write, and the last
     * step's trigger resolution came up empty. The owning fabric may
     * then park the PE and re-step it only after a watched channel
     * reports activity (see uarch/cycle_fabric.hh).
     */
    bool
    canSleep() const
    {
        return !halted_ && idleCycle_ && !busy() && !specActive() &&
               pendingPredMask_ == 0 && !pendingPredCommit_.has_value();
    }

    /**
     * Account @p n skipped cycles at once. Each skipped cycle is
     * exactly what step() would have done while asleep: one cycle
     * counted, attributed to "no trigger eligible".
     */
    void
    skipIdleCycles(std::uint64_t n)
    {
        if (trace_) [[unlikely]]
            traceSkippedCycles(n);
        counters_.cycles += n;
        counters_.noTrigger += n;
    }

    /** Input queues referenced by any trigger (bit per port). */
    std::uint32_t watchedInputs() const { return usedInputs_; }

    /** Output queues referenced by any trigger (bit per port). */
    std::uint32_t watchedOutputs() const { return usedOutputs_; }

    // ----- Incremental trigger-resolution cache ------------------------
    //
    // With the cache armed (CycleFabric arms it when no fault injector
    // is installed — stuck-status fault windows open without queue
    // events), the PE memoizes its per-queue scheduler status words and
    // the last trigger verdict, and only re-resolves when a watched
    // queue or a predicate input changed. Every invalidation source is
    // a queue event (fabric-notified via noteQueuesDirty) or a PE-local
    // state change (issue/writeback/commit sites). Dirty-tracking
    // invariants are documented in docs/batched_sim.md.

    /**
     * Arm or disarm the resolution cache. Disarmed (the default —
     * standalone PEs have no fabric feeding them queue-dirty events)
     * every resolution recomputes status words in full, exactly the
     * pre-cache behaviour. Arming is refused for instruction stores
     * beyond 64 slots (the memo masks are one word).
     */
    void
    setResolutionCacheEnabled(bool enabled)
    {
        resolutionCacheEnabled_ = enabled && triggerDescs_.size() <= 64;
        resolutionValid_ = false;
        dirtyInputs_ = usedInputs_;
        dirtyOutputs_ = usedOutputs_;
    }

    /** True when the cache is armed (and the store fits the masks). */
    bool resolutionCacheArmed() const { return resolutionCacheEnabled_; }

    /**
     * Fabric notification that watched queues changed: marks their
     * status bits stale and drops the memoized verdict. @p inputs /
     * @p outputs are this PE's port bits bound to the dirty channel.
     */
    void
    noteQueuesDirty(std::uint32_t inputs, std::uint32_t outputs)
    {
        dirtyInputs_ |= inputs;
        dirtyOutputs_ |= outputs;
        resolutionValid_ = false;
    }

    /** True while the memoized verdict is consumable as-is. */
    bool resolutionValid() const { return resolutionValid_; }

    /**
     * Refresh the memoized status words / per-descriptor queue-
     * condition mask from the dirty-queue masks (no-op when clean).
     * The batched kernel calls this before gathering a lane's status
     * bits; the scalar path runs it lazily inside resolution.
     */
    void refreshResolutionInputs();

    /**
     * Install a verdict computed by the batched SoA kernel from this
     * PE's own (refreshed) status bits. Consumed exactly like a
     * self-computed verdict; the first consumption counts as a full
     * resolve so scalar and batched ResolutionStats stay identical.
     */
    void
    seedResolution(ScheduleResult result)
    {
        cachedResolution_ = result;
        resolutionValid_ = true;
        resolutionSeededFull_ = true;
    }

    /** Memoized scheduler status (valid after refreshResolutionInputs). */
    const QueueStatusWords &statusWords() const { return statusWords_; }

    /** Bit i: descriptor i's queue conditions hold in statusWords(). */
    std::uint64_t queueOkMask() const { return queueOkMask_; }

    /** Compiled trigger descriptors (batched-kernel compilation). */
    const std::vector<TriggerDesc> &triggerDescs() const
    {
        return triggerDescs_;
    }

    /** Predicates with in-flight unresolved datapath writes. */
    std::uint64_t pendingPredMask() const { return pendingPredMask_; }

    /** Whether trigger resolution goes through the reference scheduler. */
    bool usesReferenceScheduler() const { return referenceScheduler_; }

    /** Host-side resolution accounting (counters.hh). */
    const ResolutionStats &resolutionStats() const { return resolution_; }

    /** True once a halt instruction has retired. */
    bool halted() const { return halted_; }

    /** True if any instruction is in flight (for quiescence checks). */
    bool busy() const { return occupied_ != 0; }

    /** Number of issued-but-unretired instructions in the pipeline. */
    unsigned inFlight() const;

    const PerfCounters &counters() const { return counters_; }
    const PeConfig &config() const { return config_; }

    std::uint64_t preds() const { return preds_; }
    const std::vector<Word> &regs() const { return regs_; }
    const std::vector<Word> &scratchpad() const { return scratchpad_; }

  private:
    friend class CycleQueueView;

    /** Always-inline bodies shared by step() and stepWork/stepIssue. */
    void stepWorkImpl();
    void stepIssueImpl();

    /** One instruction in flight. */
    struct InFlight
    {
        const Instruction *inst = nullptr;
        unsigned index = 0;       ///< Instruction-store index.
        std::uint64_t id = 0;     ///< Issue order id.
        /**
         * Number of unconfirmed speculation contexts this instruction
         * was issued under (0 = non-speculative). With nested
         * speculation off this is at most 1.
         */
        unsigned specLevel = 0;
        bool isPredictor = false; ///< Carries one of the predictions.
        bool predictedValue = false;
        bool faultFlipped = false; ///< Prediction inverted by injection.
        bool didD = false;        ///< Operand capture / dequeue done.
        std::array<Word, 2> operands = {0, 0};

        bool speculative() const { return specLevel > 0; }
    };

    unsigned segD() const { return config_.shape.segD(); }
    unsigned segX1() const { return config_.shape.segX1(); }
    unsigned lastSeg() const { return config_.shape.depth() - 1; }

    /** Register-dependence stall check for an instruction entering D. */
    bool dataHazardFor(const Instruction &inst, std::uint64_t id) const;

    /**
     * Queue status as the scheduler sees it (Section 5.3): live input
     * occupancy net of in-flight dequeues, cycle-start output occupancy
     * gross of in-flight and just-performed enqueues. Without +Q the
     * view degrades to the conservative full/empty discipline. These
     * are the single source of truth for both the per-cycle status
     * words and the diagnostic QueueStatusView. Defined inline below
     * the class — computeStatusWords runs them once per watched queue
     * per cycle.
     */
    unsigned schedInputOccupancy(unsigned q) const;
    std::optional<Tag> schedInputHeadTag(unsigned q) const;
    bool schedOutputHasSpace(unsigned q) const;

    /** Pack this cycle's queue status for the mask-based scheduler. */
    QueueStatusWords computeStatusWords() const;

    /**
     * Trigger resolution with caching and accounting: replay the
     * memoized verdict when still valid, otherwise resolve (through
     * the memo when armed, the plain mask path or the reference
     * scheduler when not) and memoize.
     */
    ScheduleResult resolveTriggers();

    /** Perform operand capture and dequeues (D-phase work). */
    void doDecode(InFlight &entry);

    /** Compute, commit and resolve speculation (X/writeback work). */
    void doWriteback(InFlight &entry);

    /** Issue logic for this cycle (T-phase work + attribution). */
    void issue();

    /** Flush all speculative in-flight instructions. */
    void flushSpeculative();

    Word readSource(const Source &src, Word imm) const;

    /**
     * Emit one trace event stamped with the cycle step() is executing
     * (counters_.cycles was already incremented at step entry). Callers
     * guard with `if (trace_)` so the disabled path stays one test;
     * the body lives out of line in a cold section so the dozen-plus
     * emission sites do not bloat the hot step loop's code footprint.
     */
    [[gnu::cold, gnu::noinline]] void
    trace(TraceEventKind kind, std::uint8_t arg = 0,
          std::uint16_t index = 0, std::uint64_t value = 0) const;

    [[gnu::cold, gnu::noinline]] void traceBucket(TraceBucket bucket) const;

    /** Retroactive no-trigger settlement for @p n skipped cycles. */
    [[gnu::cold, gnu::noinline]] void
    traceSkippedCycles(std::uint64_t n) const;

    /**
     * Trigger resolution through the virtual QueueStatusView reference
     * scheduler (setUseReferenceScheduler). Out of line and cold so
     * the view construction and virtual scheduler stay off issue()'s
     * fast path and out of its inlining budget.
     */
    [[gnu::cold, gnu::noinline]] ScheduleResult scheduleReference() const;

    const ArchParams params_;
    const PeConfig config_;
    std::vector<Instruction> program_;

    /** Triggers compiled to mask form, one per program slot. */
    std::vector<TriggerDesc> triggerDescs_;
    /** Union of all descriptors' input requirements (wake set). */
    std::uint32_t usedInputs_ = 0;
    /** Union of all descriptors' output requirements (wake set). */
    std::uint32_t usedOutputs_ = 0;

    // Architectural state.
    std::vector<Word> regs_;
    std::vector<Word> scratchpad_;
    std::uint64_t preds_ = 0;
    bool halted_ = false;

    // Pipeline state.
    std::array<std::optional<InFlight>, 4> slots_;
    /**
     * Bit s set iff slots_[s] holds an instruction — kept in lockstep
     * with every emplace/reset so busy()/canSleep()/inFlight() are a
     * single compare instead of a four-optional scan (those run per PE
     * per cycle in the fabric loop), and the step phases visit only
     * occupied segments.
     */
    std::uint8_t occupied_ = 0;
    std::uint64_t nextId_ = 1;
    bool haltIssued_ = false;

    // Hazard accounting.
    std::vector<unsigned> pendingDeq_; ///< Per input queue.
    std::vector<unsigned> pendingEnq_; ///< Per output queue.
    std::vector<unsigned> pendingPredWrites_; ///< Per predicate (no +P).
    /** Bit p set iff pendingPredWrites_[p] > 0 (kept incrementally). */
    std::uint64_t pendingPredMask_ = 0;

    /** Last step's trigger resolution found nothing eligible. */
    bool idleCycle_ = false;

    // Speculation state (+P / +N). Contexts are ordered oldest first;
    // in-order execution guarantees they resolve front to back.
    struct SpecContext
    {
        std::uint64_t id;            ///< Predicting instruction.
        std::uint64_t fallbackPreds; ///< State to restore on mispredict.
    };
    PredicatePredictor predictor_;
    std::vector<SpecContext> specContexts_;

    /** Maximum simultaneous predictions with nested speculation. */
    static constexpr unsigned kMaxNestedSpeculation = 3;

    bool specActive() const { return !specContexts_.empty(); }

    /**
     * A datapath predicate write lands at the end of its writeback
     * cycle, so it must stay invisible to this cycle's trigger
     * resolution; it is buffered here and committed at end of step().
     */
    struct PredCommit
    {
        unsigned index;
        bool value;
    };
    std::optional<PredCommit> pendingPredCommit_;

    /** Misprediction squashes this cycle's issue slot as well. */
    bool squashIssueThisCycle_ = false;

    // Channel bindings.
    std::vector<TaggedQueue *> inputs_;
    std::vector<TaggedQueue *> outputs_;

    // Fault injection (optional, non-owning).
    FaultInjector *faultInjector_ = nullptr;
    unsigned peId_ = 0;

    PerfCounters counters_;

    // Incremental trigger-resolution cache (see the public API block).
    bool resolutionCacheEnabled_ = false;
    /** cachedResolution_ is a replayable verdict. */
    bool resolutionValid_ = false;
    /** Verdict was installed by the batched kernel, not yet consumed. */
    bool resolutionSeededFull_ = false;
    ScheduleResult cachedResolution_;
    /** Watched queues whose memoized status bits are stale (bit/port). */
    std::uint32_t dirtyInputs_ = 0;
    std::uint32_t dirtyOutputs_ = 0;
    /** Bit i: descriptor i's queue conditions hold in statusWords_. */
    std::uint64_t queueOkMask_ = 0;
    /** Memoized scheduler status, refreshed per dirty-queue masks. */
    QueueStatusWords statusWords_{};
    /** Input queue -> descriptors whose conditions read it (bit/slot). */
    std::vector<std::uint64_t> inQueueDescs_;
    /** Output queue -> descriptors whose conditions read it. */
    std::vector<std::uint64_t> outQueueDescs_;
    ResolutionStats resolution_;

    // Observability (optional, non-owning). Last on purpose: keeps
    // the per-cycle members above — counters_ especially — at their
    // established offsets.
    TraceSink *trace_ = nullptr;
    TraceLevel traceLevel_ = TraceLevel::Events;
    std::uint32_t traceId_ = 0;
    /** Use the virtual reference scheduler instead of the mask path. */
    bool referenceScheduler_ = false;
};

inline unsigned
PipelinedPe::schedInputOccupancy(unsigned q) const
{
    const TaggedQueue *queue = inputs_[q];
    if (!queue)
        return 0;
    if (queue->faultStuckEmpty())
        return 0;
    const unsigned pending = pendingDeq_[q];
    if (!config_.effectiveQueueStatus) {
        // Conservative (RAW-style): a dequeue that was in flight at
        // the start of this cycle — including one that landed in
        // decode this very cycle — makes the queue look empty.
        const unsigned pending_at_start = pending + queue->popsThisCycle();
        return pending_at_start > 0 ? 0 : queue->size();
    }
    // Effective status: live occupancy net of in-flight dequeues
    // (algebraically identical to cycle-start occupancy minus
    // cycle-start in-flight dequeues).
    const unsigned live = queue->size();
    return live > pending ? live - pending : 0;
}

inline std::optional<Tag>
PipelinedPe::schedInputHeadTag(unsigned q) const
{
    const TaggedQueue *queue = inputs_[q];
    if (!queue)
        return std::nullopt;
    if (queue->faultStuckEmpty())
        return std::nullopt;
    const unsigned depth = config_.effectiveQueueStatus ? pendingDeq_[q] : 0;
    const Token *token = queue->peekPtr(depth);
    if (token == nullptr)
        return std::nullopt;
    return token->tag;
}

inline bool
PipelinedPe::schedOutputHasSpace(unsigned q) const
{
    const TaggedQueue *queue = outputs_[q];
    if (!queue)
        return false;
    if (queue->faultStuckFull())
        return false;
    const unsigned pending = pendingEnq_[q];
    // Occupancy the consumer cannot have drained yet this cycle:
    // cycle-start contents plus pushes performed this cycle.
    const unsigned used = queue->snapshotSize() + queue->pendingPushes();
    if (!config_.effectiveQueueStatus) {
        // Conservative: any enqueue in flight at cycle start —
        // including one that landed this cycle — makes the queue
        // look full.
        const unsigned pending_at_start = pending + queue->pendingPushes();
        return pending_at_start == 0 && used < queue->capacity();
    }
    return used + pending < queue->capacity();
}

} // namespace tia

#endif // TIA_UARCH_PIPELINED_PE_HH
