/**
 * @file
 * Microarchitecture configuration: the eight pipeline shapes of
 * Section 5.4 and the two optional hazard mitigations (+P, +Q).
 *
 * The paper divides PE work into three conceptual stages — trigger (T),
 * decode (D) and execute (X, optionally split X1|X2) — and considers
 * every pipeline obtained by placing registers between them: TDX
 * (single cycle), TD|X, T|DX, TDX1|X2, TD|X1|X2, T|DX1|X2, T|D|X and
 * T|D|X1|X2. With predicate prediction and effective queue status
 * independently togglable this yields the paper's 32 distinct
 * microarchitectures.
 */

#ifndef TIA_UARCH_CONFIG_HH
#define TIA_UARCH_CONFIG_HH

#include <array>
#include <optional>
#include <string>
#include <vector>

namespace tia {

/** Where the pipeline registers sit. */
struct PipelineShape
{
    bool splitTD = false; ///< Register between T and D.
    bool splitDX = false; ///< Register between D and X.
    bool splitX = false;  ///< Split the ALU across X1|X2.

    /** Segment index executing the trigger phase (always 0). */
    unsigned segT() const { return 0; }
    /** Segment index executing the decode phase. */
    unsigned segD() const { return splitTD ? 1 : 0; }
    /** Segment executing the first (or only) execute phase. */
    unsigned segX1() const { return segD() + (splitDX ? 1 : 0); }
    /** Segment executing the last execute phase (= segX1 unless split). */
    unsigned segX2() const { return segX1() + (splitX ? 1 : 0); }
    /** Pipeline depth in stages (1 - 4). */
    unsigned depth() const { return segX2() + 1; }

    /** Canonical name, e.g. "T|DX1|X2". */
    std::string name() const;

    /**
     * Per-segment labels in pipeline order — name() split at the
     * registers, e.g. {"T", "DX1", "X2"}. size() == depth(). Used to
     * label stage-occupancy trace tracks (obs/chrome_trace.hh).
     */
    std::vector<std::string> segmentNames() const;

    bool operator==(const PipelineShape &) const = default;
};

/** The eight stage partitions studied in the paper, shallow to deep. */
const std::array<PipelineShape, 8> &allShapes();

/** A complete PE microarchitecture configuration. */
struct PeConfig
{
    PipelineShape shape;
    /** Predicate prediction (+P, Section 5.2). */
    bool predictPredicates = false;
    /** Effective queue status accounting (+Q, Section 5.3). */
    bool effectiveQueueStatus = false;
    /**
     * Nested speculation (+N): the Section 6 extension the paper
     * proposes to reduce forbidden-instruction stalls in deep pipes —
     * a second (and third) prediction may be issued while an earlier
     * one is still unconfirmed. Requires predictPredicates.
     */
    bool nestedSpeculation = false;

    /** Canonical name, e.g. "T|DX1|X2 +P+Q" or "T|D|X1|X2 +P+N+Q". */
    std::string name() const;

    bool operator==(const PeConfig &) const = default;
};

/**
 * All 32 microarchitectures: 8 shapes x {base, +P, +Q, +P+Q}.
 * Ordered by shape (shallow to deep), then base, +P, +Q, +P+Q.
 */
std::vector<PeConfig> allConfigs();

/** The 8 x {base, +P, +P+Q} subset plotted in the paper's Figure 5. */
std::vector<PeConfig> figure5Configs();

/**
 * Parse a canonical configuration name (e.g. "T|DX1|X2 +P+Q",
 * "T|D|X1|X2 +P+N+Q", or "TDX"). Returns nullopt for unknown names.
 */
std::optional<PeConfig> parseConfigName(const std::string &name);

} // namespace tia

#endif // TIA_UARCH_CONFIG_HH
