#include "uarch/fabric_metrics.hh"

#include "obs/metrics.hh"

namespace tia {

JsonValue
fabricRunMetrics(CycleFabric &fabric, const PeConfig &uarch,
                 RunStatus status)
{
    JsonValue run = JsonValue::object();
    run["uarch"] = uarch.name();
    run["status"] = runStatusName(status);
    run["cycles"] = fabric.now();
    run["num_pes"] = fabric.numPes();

    const HangReport &report = fabric.hangReport();
    JsonValue verdict = JsonValue::object();
    verdict["classification"] = runStatusName(report.classification);
    verdict["summary"] = report.summary;
    run["verdict"] = std::move(verdict);

    const FabricStepStats steps = fabric.stepStats();
    run["sleep"] =
        sleepMetricsJson(steps.peStepsExecuted, steps.peStepsSkipped);

    const ResolutionStats resolution = fabric.resolutionStats();
    run["resolution"] = resolutionMetricsJson(resolution.incrementalSkips,
                                              resolution.fullResolves);

    JsonValue pes = JsonValue::array();
    for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
        // The const accessor settles sleep debt without waking.
        const PipelinedPe &state =
            const_cast<const CycleFabric &>(fabric).pe(pe);
        JsonValue entry =
            peMetricsJson(pe, state.counters(), state.inFlight());
        entry["halted"] = state.halted();
        pes.push(std::move(entry));
    }
    run["pes"] = std::move(pes);

    JsonValue channels = JsonValue::object();
    JsonValue highWater = JsonValue::array();
    unsigned capacity = 0;
    for (unsigned ch = 0; ch < fabric.numChannels(); ++ch) {
        highWater.push(fabric.channel(ch).highWater());
        capacity = fabric.channel(ch).capacity();
    }
    channels["capacity"] = capacity;
    channels["high_water"] = std::move(highWater);
    run["channels"] = std::move(channels);
    return run;
}

} // namespace tia
