/**
 * @file
 * Per-PE performance counters and CPI stack (paper Figure 5).
 *
 * Every simulated cycle (up to and including the cycle the PE's halt
 * retires) is attributed to exactly one bucket, so the buckets sum to
 * the cycle count and divide by retired instructions into the CPI
 * stack the paper plots.
 */

#ifndef TIA_UARCH_COUNTERS_HH
#define TIA_UARCH_COUNTERS_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "core/types.hh"

namespace tia {

/** Raw event counts collected by a pipelined PE. */
struct PerfCounters
{
    Cycle cycles = 0; ///< Cycles from reset to halt retirement.

    // Issue-slot attribution (sums to cycles).
    std::uint64_t retired = 0;       ///< Issue cycles that retired.
    std::uint64_t quashed = 0;       ///< Issue cycles flushed on misprediction.
    std::uint64_t predicateHazard = 0; ///< Stalls on unresolved predicates.
    std::uint64_t dataHazard = 0;    ///< Stalls on register dependences.
    std::uint64_t forbidden = 0;     ///< Ready but barred during speculation.
    std::uint64_t noTrigger = 0;     ///< No eligible instruction.

    // Secondary statistics.
    std::uint64_t predicateWrites = 0; ///< Retired datapath predicate writes.
    std::uint64_t predictions = 0;     ///< Predictions made (+P).
    std::uint64_t mispredictions = 0;  ///< Predictions that rolled back.
    std::uint64_t dequeues = 0;        ///< Input tokens consumed.
    std::uint64_t enqueues = 0;        ///< Output tokens produced.

    // Fault-injection accounting (sim/fault.hh).
    std::uint64_t faultsInjected = 0;  ///< Predictions inverted by a fault.
    std::uint64_t faultRecoveries = 0; ///< Injected flips repaired by rollback.

    /**
     * Cycles per retired instruction. A PE that retired nothing (never
     * triggered, or deadlocked) has no CPI: reporting 0.0 would claim
     * the best possible one, so the undefined case is NaN — rendered
     * "-" by formatCpi() and null in JSON.
     */
    double
    cpi() const
    {
        return retired == 0 ? std::numeric_limits<double>::quiet_NaN()
                            : static_cast<double>(cycles) /
                                  static_cast<double>(retired);
    }

    /** Dynamic rate of datapath predicate writes (Figure 4 x-axis). */
    double
    predicateWriteRate() const
    {
        return retired == 0 ? 0.0
                            : static_cast<double>(predicateWrites) /
                                  static_cast<double>(retired);
    }

    /** Prediction accuracy (Figure 4). */
    double
    predictionAccuracy() const
    {
        return predictions == 0
                   ? 1.0
                   : 1.0 - static_cast<double>(mispredictions) /
                               static_cast<double>(predictions);
    }

    /** Field-wise equality (the optimization-equivalence tests). */
    bool operator==(const PerfCounters &) const = default;

    /** Accumulate (for averaging across workloads). */
    PerfCounters &
    operator+=(const PerfCounters &other)
    {
        cycles += other.cycles;
        retired += other.retired;
        quashed += other.quashed;
        predicateHazard += other.predicateHazard;
        dataHazard += other.dataHazard;
        forbidden += other.forbidden;
        noTrigger += other.noTrigger;
        predicateWrites += other.predicateWrites;
        predictions += other.predictions;
        mispredictions += other.mispredictions;
        dequeues += other.dequeues;
        enqueues += other.enqueues;
        faultsInjected += other.faultsInjected;
        faultRecoveries += other.faultRecoveries;
        return *this;
    }
};

/**
 * Host-side trigger-resolution accounting (docs/batched_sim.md): how
 * many scheduler verdicts were computed in full (queue status words +
 * descriptor scan) versus replayed from the dirty-queue incremental
 * cache. Not an attribution bucket — architectural results are
 * bit-identical whichever way a verdict was obtained — so this lives
 * outside PerfCounters and its cycles identity. A verdict resolved by
 * the batched SoA bitplane kernel counts as a full resolve on the lane
 * that consumed it, keeping scalar and batched counts identical.
 */
struct ResolutionStats
{
    /** Verdicts replayed unchanged (no watched queue/predicate delta). */
    std::uint64_t incrementalSkips = 0;
    /** Verdicts computed from (possibly memoized) queue status. */
    std::uint64_t fullResolves = 0;

    /** Total trigger-resolution decisions (the checker identity). */
    std::uint64_t
    triggersResolved() const
    {
        return incrementalSkips + fullResolves;
    }

    bool operator==(const ResolutionStats &) const = default;

    ResolutionStats &
    operator+=(const ResolutionStats &other)
    {
        incrementalSkips += other.incrementalSkips;
        fullResolves += other.fullResolves;
        return *this;
    }
};

/** A normalized CPI stack (per retired instruction), Figure 5 format. */
struct CpiStack
{
    double retired = 0.0; ///< Always 1.0 when any instruction retired.
    double quashed = 0.0;
    double predicateHazard = 0.0;
    double dataHazard = 0.0;
    double forbidden = 0.0;
    double noTrigger = 0.0;

    double
    total() const
    {
        return retired + quashed + predicateHazard + dataHazard + forbidden +
               noTrigger;
    }

    CpiStack &
    operator+=(const CpiStack &other)
    {
        retired += other.retired;
        quashed += other.quashed;
        predicateHazard += other.predicateHazard;
        dataHazard += other.dataHazard;
        forbidden += other.forbidden;
        noTrigger += other.noTrigger;
        return *this;
    }

    CpiStack &
    operator/=(double divisor)
    {
        // Averaging over an empty workload set is undefined; make it
        // uniformly NaN (rendered "-" / null) instead of letting a
        // zero divisor leak 0/0 and inf into the Figure 5 tables.
        if (divisor == 0.0)
            divisor = std::numeric_limits<double>::quiet_NaN();
        retired /= divisor;
        quashed /= divisor;
        predicateHazard /= divisor;
        dataHazard /= divisor;
        forbidden /= divisor;
        noTrigger /= divisor;
        return *this;
    }
};

/**
 * Render a CPI-like value for tables: "-" for the undefined (NaN or
 * infinite) case, a fixed-point number otherwise. Shared by the
 * tia-sim counter printout and the bench CPI tables.
 */
inline std::string
formatCpi(double value, int precision = 3)
{
    if (!std::isfinite(value))
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

/** Convert raw counters to a CPI stack. */
inline CpiStack
cpiStack(const PerfCounters &counters)
{
    CpiStack stack;
    if (counters.retired == 0)
        return stack;
    const double retired = static_cast<double>(counters.retired);
    stack.retired = 1.0;
    stack.quashed = static_cast<double>(counters.quashed) / retired;
    stack.predicateHazard =
        static_cast<double>(counters.predicateHazard) / retired;
    stack.dataHazard = static_cast<double>(counters.dataHazard) / retired;
    stack.forbidden = static_cast<double>(counters.forbidden) / retired;
    stack.noTrigger = static_cast<double>(counters.noTrigger) / retired;
    return stack;
}

} // namespace tia

#endif // TIA_UARCH_COUNTERS_HH
