#include "cache/digest.hh"

#include <bit>
#include <cstring>

namespace tia {

namespace {

inline std::uint64_t
rotl64(std::uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

inline std::uint64_t
fmix64(std::uint64_t k)
{
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    k ^= k >> 33;
    return k;
}

/** Little-endian 64-bit load that tolerates unaligned addresses. */
inline std::uint64_t
load64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v; // all supported hosts are little-endian (asserted below)
}

} // namespace

Digest128
digest128(const void *data, std::size_t size)
{
    // The persistent tier stores raw digests, so the value must not
    // depend on host byte order. Everything this repo targets is
    // little-endian; make a byte-order change loud instead of silent.
    static_assert(std::endian::native == std::endian::little ||
                      std::endian::native == std::endian::big,
                  "mixed-endian hosts unsupported");
    static_assert(std::endian::native == std::endian::little,
                  "digest128 assumes a little-endian host (the cache "
                  "file format is defined in little-endian terms)");

    constexpr std::uint64_t kSeed = 0x7469612d73696d63ull; // "tia-simc"
    constexpr std::uint64_t c1 = 0x87c37b91114253d5ull;
    constexpr std::uint64_t c2 = 0x4cf5ad432745937full;

    const auto *bytes = static_cast<const std::uint8_t *>(data);
    const std::size_t nblocks = size / 16;

    std::uint64_t h1 = kSeed;
    std::uint64_t h2 = kSeed;

    for (std::size_t i = 0; i < nblocks; ++i) {
        std::uint64_t k1 = load64(bytes + i * 16);
        std::uint64_t k2 = load64(bytes + i * 16 + 8);

        k1 *= c1;
        k1 = rotl64(k1, 31);
        k1 *= c2;
        h1 ^= k1;
        h1 = rotl64(h1, 27);
        h1 += h2;
        h1 = h1 * 5 + 0x52dce729;

        k2 *= c2;
        k2 = rotl64(k2, 33);
        k2 *= c1;
        h2 ^= k2;
        h2 = rotl64(h2, 31);
        h2 += h1;
        h2 = h2 * 5 + 0x38495ab5;
    }

    const std::uint8_t *tail = bytes + nblocks * 16;
    std::uint64_t k1 = 0;
    std::uint64_t k2 = 0;
    switch (size & 15) {
      case 15: k2 ^= std::uint64_t(tail[14]) << 48; [[fallthrough]];
      case 14: k2 ^= std::uint64_t(tail[13]) << 40; [[fallthrough]];
      case 13: k2 ^= std::uint64_t(tail[12]) << 32; [[fallthrough]];
      case 12: k2 ^= std::uint64_t(tail[11]) << 24; [[fallthrough]];
      case 11: k2 ^= std::uint64_t(tail[10]) << 16; [[fallthrough]];
      case 10: k2 ^= std::uint64_t(tail[9]) << 8; [[fallthrough]];
      case 9:
        k2 ^= std::uint64_t(tail[8]);
        k2 *= c2;
        k2 = rotl64(k2, 33);
        k2 *= c1;
        h2 ^= k2;
        [[fallthrough]];
      case 8: k1 ^= std::uint64_t(tail[7]) << 56; [[fallthrough]];
      case 7: k1 ^= std::uint64_t(tail[6]) << 48; [[fallthrough]];
      case 6: k1 ^= std::uint64_t(tail[5]) << 40; [[fallthrough]];
      case 5: k1 ^= std::uint64_t(tail[4]) << 32; [[fallthrough]];
      case 4: k1 ^= std::uint64_t(tail[3]) << 24; [[fallthrough]];
      case 3: k1 ^= std::uint64_t(tail[2]) << 16; [[fallthrough]];
      case 2: k1 ^= std::uint64_t(tail[1]) << 8; [[fallthrough]];
      case 1:
        k1 ^= std::uint64_t(tail[0]);
        k1 *= c1;
        k1 = rotl64(k1, 31);
        k1 *= c2;
        h1 ^= k1;
        break;
      case 0:
        break;
    }

    h1 ^= static_cast<std::uint64_t>(size);
    h2 ^= static_cast<std::uint64_t>(size);
    h1 += h2;
    h2 += h1;
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 += h2;
    h2 += h1;
    return {h1, h2};
}

std::string
Digest128::hex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
        out[i] = digits[(hi >> (60 - 4 * i)) & 0xf];
        out[16 + i] = digits[(lo >> (60 - 4 * i)) & 0xf];
    }
    return out;
}

bool
Digest128::fromHex(std::string_view text, Digest128 &out)
{
    if (text.size() != 32)
        return false;
    std::uint64_t parts[2] = {0, 0};
    for (int half = 0; half < 2; ++half) {
        for (int i = 0; i < 16; ++i) {
            const char c = text[half * 16 + i];
            std::uint64_t nibble;
            if (c >= '0' && c <= '9')
                nibble = static_cast<std::uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                nibble = static_cast<std::uint64_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                nibble = static_cast<std::uint64_t>(c - 'A' + 10);
            else
                return false;
            parts[half] = (parts[half] << 4) | nibble;
        }
    }
    out = {parts[0], parts[1]};
    return true;
}

} // namespace tia
