#include "cache/run_cache.hh"

#include "cache/serialize.hh"

namespace tia {

namespace {

/**
 * Domain separator: keys for different payload kinds must never
 * collide even if their serialized inputs happen to match (tia-sim
 * caches rendered reports in the same SimCache files).
 */
constexpr std::string_view kDomain = "tia.workload-run";

void
writeCounters(ByteWriter &out, const PerfCounters &counters)
{
    out.u64(counters.cycles);
    out.u64(counters.retired);
    out.u64(counters.quashed);
    out.u64(counters.predicateHazard);
    out.u64(counters.dataHazard);
    out.u64(counters.forbidden);
    out.u64(counters.noTrigger);
    out.u64(counters.predicateWrites);
    out.u64(counters.predictions);
    out.u64(counters.mispredictions);
    out.u64(counters.dequeues);
    out.u64(counters.enqueues);
    out.u64(counters.faultsInjected);
    out.u64(counters.faultRecoveries);
}

void
readCounters(ByteReader &in, PerfCounters &counters)
{
    counters.cycles = in.u64();
    counters.retired = in.u64();
    counters.quashed = in.u64();
    counters.predicateHazard = in.u64();
    counters.dataHazard = in.u64();
    counters.forbidden = in.u64();
    counters.noTrigger = in.u64();
    counters.predicateWrites = in.u64();
    counters.predictions = in.u64();
    counters.mispredictions = in.u64();
    counters.dequeues = in.u64();
    counters.enqueues = in.u64();
    counters.faultsInjected = in.u64();
    counters.faultRecoveries = in.u64();
}

void
writeStringList(ByteWriter &out, const std::vector<std::string> &list)
{
    out.u64(list.size());
    for (const std::string &s : list)
        out.str(s);
}

bool
readStringList(ByteReader &in, std::vector<std::string> &list)
{
    const std::uint64_t count = in.u64();
    if (count > in.remaining()) // each entry needs >= 1 byte of prefix
        return false;
    list.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        list.push_back(in.str());
    return in.ok();
}

} // namespace

Digest128
workloadRunKey(const Workload &workload, const PeConfig &uarch,
               const CycleRunOptions &options)
{
    ByteWriter key;
    key.u32(kCacheSchemaVersion);
    key.str(kDomain);
    key.str(workload.name);
    serializeProgram(key, workload.program);
    serializeFabricConfig(key, workload.config);
    key.u32(workload.workerPe);

    // The input image: run the (deterministic) preload on a scratch
    // memory. Costs one footprint-sized pass — negligible next to the
    // simulation it may save.
    Memory image(workload.config.memoryWords);
    workload.preload(image);
    serializeMemoryImage(key, image);

    serializePeConfig(key, uarch);

    key.u64(options.maxCycles);
    key.u64(options.quiescenceWindow);
    serializeFaultPlan(key, options.faults);
    key.u8(options.goldenCrossCheck ? 1 : 0);
    // referenceScheduler is proven bit-identical to the fast path, but
    // it is still a distinct requested computation; keep it in the key
    // so a cross-check run never silently reuses a fast-path result.
    key.u8(options.referenceScheduler ? 1 : 0);

    return digest128(key.data());
}

std::string
encodeWorkloadRun(const WorkloadRun &run)
{
    ByteWriter out;
    out.u8(static_cast<std::uint8_t>(run.status));
    out.str(run.checkError);
    writeCounters(out, run.worker);
    out.u64(run.workerInFlight);
    out.u32(run.workerPe);
    out.u64(run.dynamicInstructions.size());
    for (std::uint64_t n : run.dynamicInstructions)
        out.u64(n);
    out.u64(run.totalCycles);

    out.u8(static_cast<std::uint8_t>(run.hang.classification));
    out.str(run.hang.summary);
    writeStringList(out, run.hang.waitChain);
    writeStringList(out, run.hang.blockedAgents);

    out.u8(static_cast<std::uint8_t>(run.faultOutcome));
    out.u64(run.faultStats.lines.size());
    for (const FaultStats::Line &line : run.faultStats.lines) {
        out.str(line.name);
        out.u64(line.fired);
        out.u64(line.declined);
    }

    out.u64(run.peStepsExecuted);
    out.u64(run.peStepsSkipped);
    out.u64(run.resolutionSkips);
    out.u64(run.resolutionFulls);
    return out.take();
}

std::optional<WorkloadRun>
decodeWorkloadRun(const std::string &payload)
{
    ByteReader in(payload);
    WorkloadRun run;
    run.status = static_cast<RunStatus>(in.u8());
    run.checkError = in.str();
    readCounters(in, run.worker);
    run.workerInFlight = in.u64();
    run.workerPe = in.u32();
    const std::uint64_t numPes = in.u64();
    if (numPes * 8 > in.remaining())
        return std::nullopt;
    run.dynamicInstructions.reserve(numPes);
    for (std::uint64_t i = 0; i < numPes; ++i)
        run.dynamicInstructions.push_back(in.u64());
    run.totalCycles = in.u64();

    run.hang.classification = static_cast<RunStatus>(in.u8());
    run.hang.summary = in.str();
    if (!readStringList(in, run.hang.waitChain) ||
        !readStringList(in, run.hang.blockedAgents))
        return std::nullopt;

    run.faultOutcome = static_cast<FaultOutcome>(in.u8());
    const std::uint64_t numLines = in.u64();
    if (numLines * 24 > in.remaining())
        return std::nullopt;
    run.faultStats.lines.reserve(numLines);
    for (std::uint64_t i = 0; i < numLines; ++i) {
        FaultStats::Line line;
        line.name = in.str();
        line.fired = in.u64();
        line.declined = in.u64();
        run.faultStats.lines.push_back(std::move(line));
    }

    run.peStepsExecuted = in.u64();
    run.peStepsSkipped = in.u64();
    run.resolutionSkips = in.u64();
    run.resolutionFulls = in.u64();
    if (!in.done())
        return std::nullopt;
    return run;
}

} // namespace tia
