/**
 * @file
 * 128-bit content digests for the simulation result cache.
 *
 * Cache keys are digests of a canonical byte serialization of every
 * simulation input (cache/serialize.hh), so the digest function must
 * be (a) stable across builds and hosts — the persistent warm tier
 * stores raw digests — and (b) wide enough that collisions are not a
 * practical concern across the >4,000-point design-space sweeps this
 * repo runs. MurmurHash3's 128-bit x64 variant satisfies both: it is
 * a fixed public algorithm with no seed-dependent platform variation
 * (we pin the seed), and 128 bits puts the birthday bound far beyond
 * any realistic key population.
 *
 * This is an integrity/identity hash, not a cryptographic one: the
 * cache defends against corruption and accidental key drift, not
 * against an adversary crafting collisions in their own cache file.
 */

#ifndef TIA_CACHE_DIGEST_HH
#define TIA_CACHE_DIGEST_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace tia {

/** A 128-bit digest, printable as 32 hex digits (hi first). */
struct Digest128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    /** 32 lowercase hex digits, most significant first. */
    std::string hex() const;

    /** Parse 32 hex digits; returns false on malformed input. */
    static bool fromHex(std::string_view text, Digest128 &out);

    bool operator==(const Digest128 &) const = default;

    /** Lexicographic (hi, lo) order, for ordered containers. */
    auto operator<=>(const Digest128 &) const = default;
};

/** MurmurHash3 x64 128 of @p size bytes at @p data (fixed seed). */
Digest128 digest128(const void *data, std::size_t size);

inline Digest128
digest128(std::string_view bytes)
{
    return digest128(bytes.data(), bytes.size());
}

/** Hash functor so Digest128 can key unordered containers. */
struct Digest128Hash
{
    std::size_t
    operator()(const Digest128 &d) const
    {
        // The digest is already uniformly mixed; fold the halves.
        return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ull));
    }
};

} // namespace tia

#endif // TIA_CACHE_DIGEST_HH
