#include "cache/serialize.hh"

#include <algorithm>

namespace tia {

void
serializeArchParams(ByteWriter &out, const ArchParams &params)
{
    out.u32(params.numRegs);
    out.u32(params.numInputQueues);
    out.u32(params.numOutputQueues);
    out.u32(params.maxCheck);
    out.u32(params.maxDeq);
    out.u32(params.numPreds);
    out.u32(params.wordWidth);
    out.u32(params.tagWidth);
    out.u32(params.numInstructions);
    out.u32(params.numOps);
    out.u32(params.numSrcs);
    out.u32(params.numDsts);
    out.u32(params.queueCapacity);
    out.u32(params.scratchpadWords);
}

void
serializeInstruction(ByteWriter &out, const Instruction &inst)
{
    // Everything Instruction::operator== compares, in declaration
    // order; the diagnostic line number is deliberately excluded (two
    // programs that differ only in source layout run identically).
    out.u8(inst.trigger.valid ? 1 : 0);
    out.u64(inst.trigger.predOn);
    out.u64(inst.trigger.predOff);
    out.u64(inst.trigger.queueChecks.size());
    for (const QueueCheck &check : inst.trigger.queueChecks) {
        out.u8(check.queue);
        out.u8(static_cast<std::uint8_t>(check.tag));
        out.u8(check.negate ? 1 : 0);
    }
    out.u32(static_cast<std::uint32_t>(inst.op));
    for (const Source &src : inst.srcs) {
        out.u8(static_cast<std::uint8_t>(src.type));
        out.u8(src.index);
    }
    out.u8(static_cast<std::uint8_t>(inst.dst.type));
    out.u8(inst.dst.index);
    out.u8(static_cast<std::uint8_t>(inst.outTag));
    out.u64(inst.dequeues.size());
    for (std::uint8_t q : inst.dequeues)
        out.u8(q);
    out.u64(inst.predSet);
    out.u64(inst.predClear);
    out.u32(inst.imm);
}

void
serializeProgram(ByteWriter &out, const Program &program)
{
    serializeArchParams(out, program.params);
    out.u64(program.pes.size());
    for (const auto &store : program.pes) {
        out.u64(store.size());
        for (const Instruction &inst : store)
            serializeInstruction(out, inst);
    }
}

void
serializeFabricConfig(ByteWriter &out, const FabricConfig &config)
{
    serializeArchParams(out, config.params);
    out.u32(config.numPes);
    out.u32(config.numChannels);
    out.u32(config.memLatency);
    out.u64(config.memoryWords);

    const auto portTable = [&out](const std::vector<std::vector<int>> &t) {
        out.u64(t.size());
        for (const auto &ports : t) {
            out.u64(ports.size());
            for (int channel : ports)
                out.u32(static_cast<std::uint32_t>(channel));
        }
    };
    portTable(config.inputChannel);
    portTable(config.outputChannel);

    out.u64(config.readPorts.size());
    for (const ReadPortSpec &port : config.readPorts) {
        out.u32(port.addrChannel);
        out.u32(port.dataChannel);
    }
    out.u64(config.writePorts.size());
    for (const WritePortSpec &port : config.writePorts) {
        out.u32(port.addrChannel);
        out.u32(port.dataChannel);
    }

    out.u64(config.initialRegs.size());
    for (const auto &regs : config.initialRegs) {
        out.u64(regs.size());
        for (Word w : regs)
            out.u32(w);
    }
    out.u64(config.initialPreds.size());
    for (std::uint64_t preds : config.initialPreds)
        out.u64(preds);
}

void
serializePeConfig(ByteWriter &out, const PeConfig &uarch)
{
    out.u8(uarch.shape.splitTD ? 1 : 0);
    out.u8(uarch.shape.splitDX ? 1 : 0);
    out.u8(uarch.shape.splitX ? 1 : 0);
    out.u8(uarch.predictPredicates ? 1 : 0);
    out.u8(uarch.effectiveQueueStatus ? 1 : 0);
    out.u8(uarch.nestedSpeculation ? 1 : 0);
}

void
serializeFaultPlan(ByteWriter &out, const FaultPlan *plan)
{
    if (plan == nullptr || plan->empty()) {
        // Absent and empty plans are the same computation: the
        // injector is not constructed for either.
        out.u8(0);
        return;
    }
    out.u8(1);
    out.u64(plan->seed);
    out.str(plan->toString());
}

void
serializeMemoryImage(ByteWriter &out, const Memory &memory)
{
    // Serialize only chunks with nonzero content: an unallocated chunk
    // reads as zero, and an allocated-but-zeroed chunk is
    // content-identical to it, so equal images serialize equally no
    // matter which chunks happen to be backed. Preloads only touch
    // their footprint, so this is proportional to workload size, not
    // address-space size.
    const auto chunkContent = [&memory](std::size_t c) -> const Word * {
        const Word *chunk = memory.chunkData(c);
        if (chunk == nullptr)
            return nullptr;
        const std::size_t count = std::min(
            Memory::chunkWords(),
            memory.size() - c * Memory::chunkWords());
        const bool allZero =
            std::all_of(chunk, chunk + count,
                        [](Word w) { return w == 0; });
        return allZero ? nullptr : chunk;
    };

    out.u64(memory.size());
    std::uint64_t populated = 0;
    for (std::size_t c = 0; c < memory.numChunks(); ++c)
        if (chunkContent(c) != nullptr)
            ++populated;
    out.u64(populated);
    for (std::size_t c = 0; c < memory.numChunks(); ++c) {
        const Word *chunk = chunkContent(c);
        if (chunk == nullptr)
            continue;
        out.u64(c);
        const std::size_t count = std::min(
            Memory::chunkWords(),
            memory.size() - c * Memory::chunkWords());
        for (std::size_t i = 0; i < count; ++i)
            out.u32(chunk[i]);
    }
}

} // namespace tia
