/**
 * @file
 * WorkloadRun-specific cache codec: the key derivation and payload
 * serialization that let runCycle results live in a SimCache.
 *
 * Physically in src/cache/ with the rest of the cache subsystem, but
 * compiled into tia_workloads: it needs Workload and CycleRunOptions,
 * and the generic tia_cache tier must not depend on the workloads
 * library (workloads -> cache is a one-way arrow).
 *
 * The key covers everything a cycle-accurate result is a function of:
 * the program, the fabric wiring, the preloaded memory image, the
 * microarchitecture, the run options and the fault plan (a seeded
 * injection run is a different computation from a clean one). The
 * trace sink is deliberately absent — tracing is a side effect the
 * cache cannot replay, so cached dispatch is bypassed entirely when a
 * sink is installed (see runCycle).
 */

#ifndef TIA_CACHE_RUN_CACHE_HH
#define TIA_CACHE_RUN_CACHE_HH

#include <optional>
#include <string>

#include "cache/digest.hh"
#include "workloads/runner.hh"

namespace tia {

/**
 * Cache key for runCycle(workload, uarch, options). Invokes
 * workload.preload on a scratch Memory to capture the input image; the
 * golden-model check is assumed to be a pure function of the same
 * inputs (all Table 3 workloads satisfy this — their preload and check
 * closures are built deterministically from the same WorkloadSizes).
 */
Digest128 workloadRunKey(const Workload &workload, const PeConfig &uarch,
                         const CycleRunOptions &options);

/** Canonical byte form of a finished run (every WorkloadRun field). */
std::string encodeWorkloadRun(const WorkloadRun &run);

/**
 * Decode a payload produced by encodeWorkloadRun. Returns nullopt on
 * any truncation or framing error — a corrupt persisted entry must
 * degrade to a recompute, never a crash.
 */
std::optional<WorkloadRun> decodeWorkloadRun(const std::string &payload);

} // namespace tia

#endif // TIA_CACHE_RUN_CACHE_HH
