#include "cache/simcache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "cache/serialize.hh"
#include "core/logging.hh"

namespace tia {

namespace {

/** File magic: format name + on-disk layout revision. */
constexpr char kMagic[8] = {'T', 'I', 'A', 'S', 'I', 'M', 'C', '1'};

/** Revision of the container layout itself (header + entry framing). */
constexpr std::uint32_t kFileVersion = 1;

/** Directory part of @p path ("." when the path has no slash). */
std::string
dirnameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/**
 * Advisory writer lock for a TIASIMC1 path, so two processes sharing
 * a cache directory (the tia-serve daemon and a CLI run) cannot
 * interleave partial saves through the shared "<path>.tmp" name. The
 * lock file sits next to the cache and is never deleted — deleting it
 * would race a peer that already holds the descriptor. Readers don't
 * need it: std::rename is atomic, so load() always sees a complete
 * old or complete new file.
 */
class SaveLock
{
  public:
    explicit SaveLock(const std::string &path)
        : fd_(::open((path + ".lock").c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                     0644))
    {
        if (fd_ >= 0) {
            int rc;
            do {
                rc = ::flock(fd_, LOCK_EX);
            } while (rc != 0 && errno == EINTR);
            locked_ = rc == 0;
        }
    }

    ~SaveLock()
    {
        if (fd_ >= 0) {
            if (locked_)
                ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    SaveLock(const SaveLock &) = delete;
    SaveLock &operator=(const SaveLock &) = delete;

    /** Lock acquisition is best-effort: an unlockable filesystem
     * (no permissions, exotic mount) degrades to the pre-lock
     * behavior instead of failing the save. */
    bool held() const { return locked_; }

  private:
    int fd_ = -1;
    bool locked_ = false;
};

/** write(2) the whole buffer, retrying on EINTR / short writes. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t written = 0;
    while (written < size) {
        const ssize_t n = ::write(fd, data + written, size - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

/** fsync(2) a directory so a completed rename survives a crash. */
void
syncDirectory(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd >= 0) {
        // Best-effort: some filesystems refuse directory fsync; the
        // rename itself is still atomic, only its durability after a
        // whole-machine crash would be at stake.
        (void)::fsync(fd);
        ::close(fd);
    }
}

} // namespace

std::string
SimCache::getOrCompute(const Digest128 &key,
                       const std::function<std::string()> &compute)
{
    std::unique_lock lock(mutex_);
    ++stats_.lookups;

    if (auto it = entries_.find(key); it != entries_.end()) {
        ++stats_.hits;
        std::string payload = it->second;
        if (verifyHits_) {
            // Recompute without the lock — verification costs a full
            // simulation and must not serialize other cache users.
            lock.unlock();
            const std::string fresh = compute();
            fatalIf(fresh != payload, "cache verify failed for key ",
                    key.hex(), ": cached payload (", payload.size(),
                    " bytes) differs from a fresh computation (",
                    fresh.size(),
                    " bytes); the key schema is missing an input or the "
                    "cache file is stale");
            lock.lock();
            ++stats_.verifiedHits;
        }
        return payload;
    }

    if (auto it = pending_.find(key); it != pending_.end()) {
        // Single-flight: another caller is already computing this key.
        ++stats_.coalesced;
        std::shared_ptr<InFlight> flight = it->second;
        done_.wait(lock, [&flight] { return flight->done; });
        if (flight->error)
            std::rethrow_exception(flight->error);
        return flight->payload;
    }

    // Leader path. The miss is counted here, at leadership claim, so
    // the hits + misses + coalesced == lookups identity survives a
    // throwing computation.
    ++stats_.misses;
    auto flight = std::make_shared<InFlight>();
    pending_.emplace(key, flight);
    lock.unlock();

    std::string payload;
    try {
        payload = compute();
    } catch (...) {
        lock.lock();
        flight->error = std::current_exception();
        flight->done = true;
        pending_.erase(key);
        done_.notify_all();
        throw;
    }

    lock.lock();
    entries_[key] = payload;
    ++generation_;
    flight->payload = payload;
    flight->done = true;
    pending_.erase(key);
    done_.notify_all();
    return payload;
}

std::optional<std::string>
SimCache::lookup(const Digest128 &key)
{
    std::lock_guard lock(mutex_);
    ++stats_.lookups;
    if (auto it = entries_.find(key); it != entries_.end()) {
        ++stats_.hits;
        return it->second;
    }
    ++stats_.misses;
    return std::nullopt;
}

void
SimCache::verifyHit(const Digest128 &key, const std::string &cached,
                    const std::string &fresh)
{
    fatalIf(fresh != cached, "cache verify failed for key ", key.hex(),
            ": cached payload (", cached.size(),
            " bytes) differs from a fresh computation (", fresh.size(),
            " bytes); the key schema is missing an input or the "
            "cache file is stale");
    std::lock_guard lock(mutex_);
    ++stats_.verifiedHits;
}

std::optional<std::string>
SimCache::peek(const Digest128 &key) const
{
    std::lock_guard lock(mutex_);
    if (auto it = entries_.find(key); it != entries_.end())
        return it->second;
    return std::nullopt;
}

void
SimCache::put(const Digest128 &key, std::string payload)
{
    std::lock_guard lock(mutex_);
    entries_[key] = std::move(payload);
    ++generation_;
}

void
SimCache::erase(const Digest128 &key)
{
    std::lock_guard lock(mutex_);
    if (entries_.erase(key) > 0)
        ++generation_;
}

std::size_t
SimCache::size() const
{
    std::lock_guard lock(mutex_);
    return entries_.size();
}

bool
SimCache::load(const std::string &path, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return true; // no file yet: an empty warm tier, not an error

    std::ostringstream contents;
    contents << in.rdbuf();
    const std::string bytes = contents.str();

    ByteReader reader(bytes);
    char magic[sizeof(kMagic)];
    for (char &c : magic)
        c = static_cast<char>(reader.u8());
    if (!reader.ok() || !std::equal(magic, magic + sizeof(kMagic), kMagic))
        return fail("not a TIASIMC1 cache file: " + path);
    const std::uint32_t fileVersion = reader.u32();
    if (!reader.ok() || fileVersion != kFileVersion)
        return fail("cache file format version " +
                    std::to_string(fileVersion) + " != " +
                    std::to_string(kFileVersion) + "; ignoring " + path);
    const std::uint32_t schema = reader.u32();
    if (!reader.ok() || schema != kCacheSchemaVersion)
        return fail("cache key schema version " + std::to_string(schema) +
                    " != " + std::to_string(kCacheSchemaVersion) +
                    "; ignoring " + path);
    const std::uint64_t count = reader.u64();
    if (!reader.ok())
        return fail("truncated cache header: " + path);

    // Adopt entries until the first sign of corruption; a truncated
    // tail costs recomputes for the dropped suffix only.
    std::uint64_t adopted = 0;
    std::lock_guard lock(mutex_);
    const bool wasEmpty = entries_.empty();
    for (std::uint64_t i = 0; i < count; ++i) {
        Digest128 key{reader.u64(), reader.u64()};
        std::string payload = reader.str();
        const Digest128 checksum{reader.u64(), reader.u64()};
        if (!reader.ok() || digest128(payload) != checksum)
            break;
        entries_[key] = std::move(payload);
        ++adopted;
    }
    stats_.loaded += adopted;
    if (adopted > 0)
        ++generation_;
    if (wasEmpty && adopted == count) {
        // Clean adoption of the whole file into an empty cache: the
        // resident entries are exactly the file's contents, so an
        // unmodified cache can dirty-skip its save back to this path.
        savedGeneration_ = generation_;
        savedPath_ = path;
    }
    if (adopted < count && error)
        *error = "cache file corrupt after entry " +
                 std::to_string(adopted) + " of " + std::to_string(count) +
                 "; kept the valid prefix: " + path;
    return true;
}

bool
SimCache::save(const std::string &path, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    ByteWriter out;
    std::uint64_t snapshot = 0;
    {
        std::lock_guard lock(mutex_);
        if (generation_ == savedGeneration_ && path == savedPath_)
            return true; // file already holds exactly these entries
        snapshot = generation_;
        out.bytes(kMagic, sizeof(kMagic));
        out.u32(kFileVersion);
        out.u32(kCacheSchemaVersion);
        out.u64(entries_.size());
        for (const auto &[key, payload] : entries_) {
            out.u64(key.hi);
            out.u64(key.lo);
            out.str(payload);
            const Digest128 checksum = digest128(payload);
            out.u64(checksum.hi);
            out.u64(checksum.lo);
        }
    }

    // Write-then-fsync-then-rename: a reader either sees the old
    // complete file or the new complete file; a crash (even kill -9 or
    // power loss) mid-save leaves the previous cache intact because
    // the data hits the disk before the rename makes it visible, and
    // the directory fsync afterwards makes the rename itself durable.
    // The advisory lock serializes concurrent savers sharing the
    // "<path>.tmp" scratch name (daemon + CLI on one cache directory).
    const SaveLock lock(path);
    const std::string tmp = path + ".tmp";
    {
        const int fd = ::open(tmp.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                              0644);
        if (fd < 0)
            return fail("cannot open " + tmp + " for writing: " +
                        std::strerror(errno));
        if (!writeAll(fd, out.data().data(), out.data().size())) {
            const std::string why = std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return fail("short write to " + tmp + ": " + why);
        }
        if (::fsync(fd) != 0) {
            const std::string why = std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return fail("cannot fsync " + tmp + ": " + why);
        }
        if (::close(fd) != 0)
            return fail("cannot close " + tmp + ": " +
                        std::strerror(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string why = std::strerror(errno);
        std::remove(tmp.c_str());
        return fail("cannot rename " + tmp + " to " + path + ": " + why);
    }
    syncDirectory(dirnameOf(path));
    {
        std::lock_guard lock(mutex_);
        // Mark clean only if nothing mutated while the file was being
        // written; a concurrent insert keeps the cache dirty so the
        // next save still runs.
        if (generation_ == snapshot) {
            savedGeneration_ = snapshot;
            savedPath_ = path;
        }
    }
    return true;
}

SimCache::Stats
SimCache::stats() const
{
    std::lock_guard lock(mutex_);
    return stats_;
}

JsonValue
SimCache::statsJson() const
{
    const Stats s = stats();
    JsonValue block = JsonValue::object();
    block["lookups"] = JsonValue(s.lookups);
    block["hits"] = JsonValue(s.hits);
    block["misses"] = JsonValue(s.misses);
    block["coalesced"] = JsonValue(s.coalesced);
    block["verified_hits"] = JsonValue(s.verifiedHits);
    return block;
}

std::string
SimCache::statsSummary() const
{
    const Stats s = stats();
    std::ostringstream os;
    os << "cache: " << s.lookups << " lookups, " << s.hits << " hits, "
       << s.misses << " misses, " << s.coalesced << " coalesced";
    if (s.verifiedHits > 0)
        os << ", " << s.verifiedHits << " verified";
    if (s.loaded > 0)
        os << " (" << s.loaded << " loaded from disk)";
    return os.str();
}

} // namespace tia
