#include "cache/simcache.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "cache/serialize.hh"
#include "core/logging.hh"

namespace tia {

namespace {

/** File magic: format name + on-disk layout revision. */
constexpr char kMagic[8] = {'T', 'I', 'A', 'S', 'I', 'M', 'C', '1'};

/** Revision of the container layout itself (header + entry framing). */
constexpr std::uint32_t kFileVersion = 1;

} // namespace

std::string
SimCache::getOrCompute(const Digest128 &key,
                       const std::function<std::string()> &compute)
{
    std::unique_lock lock(mutex_);
    ++stats_.lookups;

    if (auto it = entries_.find(key); it != entries_.end()) {
        ++stats_.hits;
        std::string payload = it->second;
        if (verifyHits_) {
            // Recompute without the lock — verification costs a full
            // simulation and must not serialize other cache users.
            lock.unlock();
            const std::string fresh = compute();
            fatalIf(fresh != payload, "cache verify failed for key ",
                    key.hex(), ": cached payload (", payload.size(),
                    " bytes) differs from a fresh computation (",
                    fresh.size(),
                    " bytes); the key schema is missing an input or the "
                    "cache file is stale");
            lock.lock();
            ++stats_.verifiedHits;
        }
        return payload;
    }

    if (auto it = pending_.find(key); it != pending_.end()) {
        // Single-flight: another caller is already computing this key.
        ++stats_.coalesced;
        std::shared_ptr<InFlight> flight = it->second;
        done_.wait(lock, [&flight] { return flight->done; });
        if (flight->error)
            std::rethrow_exception(flight->error);
        return flight->payload;
    }

    // Leader path. The miss is counted here, at leadership claim, so
    // the hits + misses + coalesced == lookups identity survives a
    // throwing computation.
    ++stats_.misses;
    auto flight = std::make_shared<InFlight>();
    pending_.emplace(key, flight);
    lock.unlock();

    std::string payload;
    try {
        payload = compute();
    } catch (...) {
        lock.lock();
        flight->error = std::current_exception();
        flight->done = true;
        pending_.erase(key);
        done_.notify_all();
        throw;
    }

    lock.lock();
    entries_[key] = payload;
    flight->payload = payload;
    flight->done = true;
    pending_.erase(key);
    done_.notify_all();
    return payload;
}

std::optional<std::string>
SimCache::peek(const Digest128 &key) const
{
    std::lock_guard lock(mutex_);
    if (auto it = entries_.find(key); it != entries_.end())
        return it->second;
    return std::nullopt;
}

void
SimCache::put(const Digest128 &key, std::string payload)
{
    std::lock_guard lock(mutex_);
    entries_[key] = std::move(payload);
}

void
SimCache::erase(const Digest128 &key)
{
    std::lock_guard lock(mutex_);
    entries_.erase(key);
}

std::size_t
SimCache::size() const
{
    std::lock_guard lock(mutex_);
    return entries_.size();
}

bool
SimCache::load(const std::string &path, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return true; // no file yet: an empty warm tier, not an error

    std::ostringstream contents;
    contents << in.rdbuf();
    const std::string bytes = contents.str();

    ByteReader reader(bytes);
    char magic[sizeof(kMagic)];
    for (char &c : magic)
        c = static_cast<char>(reader.u8());
    if (!reader.ok() || !std::equal(magic, magic + sizeof(kMagic), kMagic))
        return fail("not a TIASIMC1 cache file: " + path);
    const std::uint32_t fileVersion = reader.u32();
    if (!reader.ok() || fileVersion != kFileVersion)
        return fail("cache file format version " +
                    std::to_string(fileVersion) + " != " +
                    std::to_string(kFileVersion) + "; ignoring " + path);
    const std::uint32_t schema = reader.u32();
    if (!reader.ok() || schema != kCacheSchemaVersion)
        return fail("cache key schema version " + std::to_string(schema) +
                    " != " + std::to_string(kCacheSchemaVersion) +
                    "; ignoring " + path);
    const std::uint64_t count = reader.u64();
    if (!reader.ok())
        return fail("truncated cache header: " + path);

    // Adopt entries until the first sign of corruption; a truncated
    // tail costs recomputes for the dropped suffix only.
    std::uint64_t adopted = 0;
    std::lock_guard lock(mutex_);
    for (std::uint64_t i = 0; i < count; ++i) {
        Digest128 key{reader.u64(), reader.u64()};
        std::string payload = reader.str();
        const Digest128 checksum{reader.u64(), reader.u64()};
        if (!reader.ok() || digest128(payload) != checksum)
            break;
        entries_[key] = std::move(payload);
        ++adopted;
    }
    stats_.loaded += adopted;
    if (adopted < count && error)
        *error = "cache file corrupt after entry " +
                 std::to_string(adopted) + " of " + std::to_string(count) +
                 "; kept the valid prefix: " + path;
    return true;
}

bool
SimCache::save(const std::string &path, std::string *error) const
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    ByteWriter out;
    {
        std::lock_guard lock(mutex_);
        out.bytes(kMagic, sizeof(kMagic));
        out.u32(kFileVersion);
        out.u32(kCacheSchemaVersion);
        out.u64(entries_.size());
        for (const auto &[key, payload] : entries_) {
            out.u64(key.hi);
            out.u64(key.lo);
            out.str(payload);
            const Digest128 checksum = digest128(payload);
            out.u64(checksum.hi);
            out.u64(checksum.lo);
        }
    }

    // Write-then-rename: a reader either sees the old complete file or
    // the new complete file, and a crash mid-write leaves the previous
    // cache intact.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
        if (!file.is_open())
            return fail("cannot open " + tmp + " for writing");
        file.write(out.data().data(),
                   static_cast<std::streamsize>(out.data().size()));
        if (!file.good())
            return fail("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return fail("cannot rename " + tmp + " to " + path);
    }
    return true;
}

SimCache::Stats
SimCache::stats() const
{
    std::lock_guard lock(mutex_);
    return stats_;
}

JsonValue
SimCache::statsJson() const
{
    const Stats s = stats();
    JsonValue block = JsonValue::object();
    block["lookups"] = JsonValue(s.lookups);
    block["hits"] = JsonValue(s.hits);
    block["misses"] = JsonValue(s.misses);
    block["coalesced"] = JsonValue(s.coalesced);
    block["verified_hits"] = JsonValue(s.verifiedHits);
    return block;
}

std::string
SimCache::statsSummary() const
{
    const Stats s = stats();
    std::ostringstream os;
    os << "cache: " << s.lookups << " lookups, " << s.hits << " hits, "
       << s.misses << " misses, " << s.coalesced << " coalesced";
    if (s.verifiedHits > 0)
        os << ", " << s.verifiedHits << " verified";
    if (s.loaded > 0)
        os << " (" << s.loaded << " loaded from disk)";
    return os.str();
}

} // namespace tia
