/**
 * @file
 * Content-addressed simulation result cache with single-flight dedup
 * and an optional persistent warm tier.
 *
 * A cycle-accurate run is a pure function of its inputs, so its result
 * can be memoized under a digest of those inputs (cache/serialize.hh
 * defines the canonical byte form, cache/digest.hh the digest). The
 * cache itself is deliberately ignorant of what it stores: entries are
 * opaque byte strings, so one SimCache type serves WorkloadRun records
 * (cache/run_cache.hh), rendered tia-sim reports, and anything a later
 * layer wants to memoize.
 *
 * Three properties matter more than raw hit speed:
 *
 *  - **Single-flight**: when SweepEngine fans a CPI matrix out over N
 *    threads, several jobs can request the same key before the first
 *    one finishes. Exactly one computes; the rest block on it and
 *    reuse the result (counted as `coalesced`, distinct from hits).
 *    Results are still placed by submission index upstream, so the
 *    engine's determinism guarantee is untouched.
 *
 *  - **Corruption degrades to a miss, never a crash**: the persistent
 *    tier (TIASIMC1, see docs/simcache.md) checksums every payload and
 *    versions both the file format and the key schema. A truncated,
 *    corrupt or version-mismatched file costs a recompute, nothing
 *    else.
 *
 *  - **Verifiability**: verify-hits mode re-runs the computation on
 *    every hit and fails loudly unless the cached bytes are identical,
 *    extending the repo's bit-identity testing discipline to the cache
 *    (`tia-sweep --cache-verify`).
 */

#ifndef TIA_CACHE_SIMCACHE_HH
#define TIA_CACHE_SIMCACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cache/digest.hh"
#include "obs/json.hh"

namespace tia {

/** Thread-safe content-addressed byte-payload cache. */
class SimCache
{
  public:
    /**
     * Lookup/outcome counters. Every getOrCompute call is classified
     * exactly once: hit (payload already resident), miss (this call
     * became the leader and computed), or coalesced (blocked on a
     * concurrent leader for the same key). The identity
     * hits + misses + coalesced == lookups always holds — including
     * when a leader's computation throws, because the miss is counted
     * at leadership claim.
     */
    struct Stats
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t coalesced = 0;
        /** Hits re-simulated and compared in verify-hits mode. */
        std::uint64_t verifiedHits = 0;
        /** Entries adopted from a persistent tier via load(). */
        std::uint64_t loaded = 0;
    };

    SimCache() = default;
    SimCache(const SimCache &) = delete;
    SimCache &operator=(const SimCache &) = delete;

    /**
     * Re-run the computation on every hit and compare byte-for-byte
     * (`--cache-verify`). A mismatch is a FatalError: it means either
     * the key schema misses an input or the cache file lied.
     */
    void setVerifyHits(bool verify) { verifyHits_ = verify; }
    bool verifyHits() const { return verifyHits_; }

    /**
     * The core operation: return the payload for @p key, invoking
     * @p compute at most once per key across all concurrent callers.
     *
     * If @p compute throws, the exception propagates to the leader and
     * is rethrown in every coalesced waiter; nothing is cached, and a
     * later call for the same key computes afresh.
     *
     * In verify-hits mode a hit additionally invokes @p compute and
     * compares; see setVerifyHits.
     */
    std::string getOrCompute(const Digest128 &key,
                             const std::function<std::string()> &compute);

    /** Lookup without computing or counting a cache lookup. */
    std::optional<std::string> peek(const Digest128 &key) const;

    /**
     * Counted probe for callers that compute outside the cache — the
     * batched sweep path (workloads/runner.cc) probes every lane of a
     * batch up front, simulates the misses together in one
     * BatchedFabric, then put()s the fresh payloads. Counts exactly
     * one lookup and one hit or miss, preserving the
     * hits + misses + coalesced == lookups identity (the batched
     * matrix never issues the same key twice, so there is no
     * single-flight leg; the miss is counted here, at claim, whether
     * or not a put() follows — mirroring a leader whose computation
     * throws). Verify-hits mode does not recompute here: the caller
     * simulates the hit lanes too and calls verifyHit().
     */
    std::optional<std::string> lookup(const Digest128 &key);

    /**
     * Compare a fresh recomputation against the payload a lookup()
     * hit returned, completing the verify-hits contract on the
     * batched path: FatalError on any byte difference (same failure
     * and message as getOrCompute verification), otherwise counts a
     * verified hit.
     */
    void verifyHit(const Digest128 &key, const std::string &cached,
                   const std::string &fresh);

    /** Insert or overwrite an entry directly. */
    void put(const Digest128 &key, std::string payload);

    /**
     * Drop an entry (used when a persisted payload fails to decode:
     * the entry degrades to a miss and is recomputed and rewritten).
     */
    void erase(const Digest128 &key);

    /** Resident entry count. */
    std::size_t size() const;

    /**
     * Adopt entries from a TIASIMC1 file. A missing file is an empty
     * warm tier (returns true); a bad magic, version mismatch or
     * corrupt header discards the file entirely; per-entry corruption
     * keeps the valid prefix and drops the rest. Never throws for file
     * content reasons — the worst case is an empty cache. Returns
     * false and sets @p error only when nothing could be adopted for a
     * reason worth reporting (the caller still proceeds cache-cold).
     */
    bool load(const std::string &path, std::string *error = nullptr);

    /**
     * Persist all resident entries to @p path in TIASIMC1 form:
     * written to a temporary file in the same directory and renamed
     * into place, so readers never observe a half-written cache and a
     * crash mid-save leaves the previous file intact. Entries are
     * written in key order, so equal contents produce identical files.
     *
     * Saves are dirty-skipped: when the resident entries are known to
     * already match the file at @p path — a clean load() into an empty
     * cache, or a previous save() to the same path, with no mutation
     * since — save() returns true without touching the filesystem.
     * A fully warm sweep therefore skips the end-of-run cache rewrite
     * entirely (the file is byte-identical either way, asserted by the
     * warm-vs-cold ctest fixtures).
     */
    bool save(const std::string &path, std::string *error = nullptr);

    Stats stats() const;

    /** The tia-metrics/v1 "cache" block (see docs/observability.md). */
    JsonValue statsJson() const;

    /** One-line human summary for --stats / stderr. */
    std::string statsSummary() const;

  private:
    /** One in-progress computation that waiters coalesce onto. */
    struct InFlight
    {
        bool done = false;
        std::string payload;
        std::exception_ptr error;
    };

    mutable std::mutex mutex_;
    std::condition_variable done_;
    /** Ordered so save() is deterministic without a sort pass. */
    std::map<Digest128, std::string> entries_;
    std::map<Digest128, std::shared_ptr<InFlight>> pending_;
    Stats stats_;
    bool verifyHits_ = false;
    /** Mutation generation; bumped on every entry change (dirty-skip). */
    std::uint64_t generation_ = 0;
    /** Generation the file at savedPath_ is known to hold. */
    std::uint64_t savedGeneration_ = ~std::uint64_t{0};
    std::string savedPath_;
};

} // namespace tia

#endif // TIA_CACHE_SIMCACHE_HH
