/**
 * @file
 * Canonical, versioned byte serialization of simulation inputs.
 *
 * A cached simulation result is only reusable if its key captures
 * *every* input the result depends on: the assembled program, the
 * fabric wiring, the preloaded memory image, the microarchitecture and
 * the run options (including the fault plan — an injected run is a
 * different computation from a clean one). These serializers define one
 * canonical little-endian byte form per input type; cache keys are
 * digests of the concatenation (cache/digest.hh), and the golden-digest
 * tests (tests/test_simcache.cc) pin a handful of keys so an accidental
 * change to any serializer is caught at review time rather than as a
 * silent fleet-wide cache miss — or, worse, as stale hits after a
 * semantic change that forgot to bump the schema version.
 *
 * kCacheSchemaVersion is part of every key and of the on-disk header:
 * bump it whenever a serializer changes shape *or* the simulation
 * semantics behind a cached result change (a counter fix, a scheduler
 * change). Old warm tiers then degrade to a clean miss.
 */

#ifndef TIA_CACHE_SERIALIZE_HH
#define TIA_CACHE_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "core/program.hh"
#include "sim/fabric_config.hh"
#include "sim/fault.hh"
#include "sim/memory.hh"
#include "uarch/config.hh"

namespace tia {

/**
 * Version of the cache key/payload serialization *and* of the
 * simulation semantics it memoizes. Bump on any change to either.
 */
inline constexpr std::uint32_t kCacheSchemaVersion = 2;

/**
 * Append-only little-endian byte writer. All multi-byte values are
 * written least-significant byte first regardless of host order, and
 * variable-length data is always length-prefixed, so the byte stream
 * is unambiguous and host-independent.
 */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buffer_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    /** Length-prefixed string. */
    void
    str(std::string_view s)
    {
        u64(s.size());
        buffer_.append(s.data(), s.size());
    }

    /** Raw bytes (caller provides framing). */
    void
    bytes(const void *data, std::size_t size)
    {
        buffer_.append(static_cast<const char *>(data), size);
    }

    const std::string &data() const { return buffer_; }
    std::string take() { return std::move(buffer_); }

  private:
    std::string buffer_;
};

/**
 * Matching reader. Reads past the end do not throw: they return zero
 * values and latch a failure flag, so decoders can run to completion
 * on truncated input and reject it with one ok() check — a corrupt
 * cache entry must degrade to a miss, never a crash.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t
    u8()
    {
        if (!ensure(1))
            return 0;
        return static_cast<std::uint8_t>(bytes_[pos_++]);
    }

    std::uint32_t
    u32()
    {
        if (!ensure(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!ensure(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t size = u64();
        if (size > remaining()) {
            failed_ = true;
            return {};
        }
        std::string out(bytes_.substr(pos_, size));
        pos_ += size;
        return out;
    }

    std::size_t remaining() const { return bytes_.size() - pos_; }
    bool ok() const { return !failed_; }
    /** True when every byte was consumed and nothing under-ran. */
    bool done() const { return !failed_ && remaining() == 0; }

  private:
    bool
    ensure(std::size_t need)
    {
        if (bytes_.size() - pos_ < need) {
            failed_ = true;
            pos_ = bytes_.size();
            return false;
        }
        return true;
    }

    std::string_view bytes_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/** Canonical forms of the simulation input types. */
void serializeArchParams(ByteWriter &out, const ArchParams &params);
void serializeInstruction(ByteWriter &out, const Instruction &inst);
void serializeProgram(ByteWriter &out, const Program &program);
void serializeFabricConfig(ByteWriter &out, const FabricConfig &config);
void serializePeConfig(ByteWriter &out, const PeConfig &uarch);

/**
 * Fault plan: seed plus the canonical reparseable text form of every
 * event (FaultPlan::toString round-trips all event fields, so two
 * plans serialize equal exactly when they inject identically).
 */
void serializeFaultPlan(ByteWriter &out, const FaultPlan *plan);

/**
 * The preloaded memory image: (chunk index, contents) pairs for every
 * chunk a preload touched. Chunked so a 64K-word address space with a
 * small workload footprint hashes in proportion to the footprint.
 */
void serializeMemoryImage(ByteWriter &out, const Memory &memory);

} // namespace tia

#endif // TIA_CACHE_SERIALIZE_HH
