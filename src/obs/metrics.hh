/**
 * @file
 * Structured metrics ("tia-metrics/v1"): the machine-readable run
 * summary tia-sim and tia-sweep emit with --metrics, and the schema
 * checker behind tools/tia_metrics_check.cc.
 *
 * Document shape (full schema in docs/observability.md):
 *
 *   {
 *     "schema": "tia-metrics/v1",
 *     "tool": "tia-sim" | "tia-sweep",
 *     "runs": [
 *       {
 *         "uarch": "T|DX +P+Q", "status": "halted", "cycles": N,
 *         "num_pes": N,
 *         "verdict": {"classification": "...", "summary": "..."},
 *         "sleep": {"pe_steps_executed": N, "pe_steps_skipped": N,
 *                   "skip_ratio": R},
 *         "resolution": {"triggers_resolved": N,
 *                        "incremental_skips": N, "full_resolves": N},
 *         "pes": [{"pe": i, "in_flight": N, "cpi": R|null,
 *                  "counters": {...}, "cpi_stack": {...}}],
 *         "channels": {"capacity": N, "high_water": [N...]},
 *         "faults": {...}            // injected runs only
 *       }
 *     ]
 *   }
 *
 * Validation enforces the counter-integrity contract this PR's fixes
 * guarantee: the six attribution buckets plus in-flight instructions
 * sum to the PE's cycles, a null CPI appears exactly when nothing
 * retired, and the sleep-accounting identity executed + skipped ==
 * sum of per-PE cycles holds whenever every PE is reported.
 */

#ifndef TIA_OBS_METRICS_HH
#define TIA_OBS_METRICS_HH

#include <string>
#include <vector>

#include "obs/json.hh"
#include "uarch/counters.hh"

namespace tia {

/** The metrics schema identifier emitted and accepted. */
inline constexpr const char *kMetricsSchema = "tia-metrics/v1";

/**
 * A tia-metrics/v1 document under construction. Thin wrapper over a
 * JsonValue that pins the schema tag and collects runs.
 */
class MetricsRegistry
{
  public:
    explicit MetricsRegistry(const std::string &tool)
    {
        root_ = JsonValue::object();
        root_["schema"] = kMetricsSchema;
        root_["tool"] = tool;
        root_["runs"] = JsonValue::array();
    }

    /** Root document (for extra top-level fields, e.g. "program"). */
    JsonValue &root() { return root_; }

    void addRun(JsonValue run) { root_["runs"].push(std::move(run)); }

    std::string dump() const { return root_.dump(); }

    /** Serialize to @p path; returns false on I/O failure. */
    bool writeTo(const std::string &path) const;

  private:
    JsonValue root_;
};

/** Serialize raw counters (every PerfCounters field). */
JsonValue countersJson(const PerfCounters &counters);

/** Serialize a normalized CPI stack. */
JsonValue cpiStackJson(const CpiStack &stack);

/**
 * Per-PE metrics entry: counters, CPI (null when nothing retired),
 * CPI stack and in-flight instructions at run end.
 */
JsonValue peMetricsJson(unsigned pe, const PerfCounters &counters,
                        unsigned inFlight);

/** Sleep/skip accounting entry (see FabricStepStats). */
JsonValue sleepMetricsJson(std::uint64_t executed, std::uint64_t skipped);

/** Trigger-resolution accounting entry (see ResolutionStats). */
JsonValue resolutionMetricsJson(std::uint64_t incrementalSkips,
                                std::uint64_t fullResolves);

/**
 * Validate a parsed document against the tia-metrics/v1 schema and the
 * counter-integrity invariants. Optional root blocks are checked when
 * present: "cache" (SimCache stats: hits + misses + coalesced ==
 * lookups, verified <= hits), "sweep" (batched lockstep accounting:
 * hits + misses == lanes, misses <= simulated <= lanes, verified <=
 * hits, cancelled <= simulated; plus the trigger-resolution aggregate
 * "resolution": incremental_skips + full_resolves == triggers_resolved
 * — the same identity is checked on each run's "resolution" entry)
 * and "server" (tia-serve accounting
 * identities: received == admitted + shed + rejected, admitted ==
 * completed + cancelled + failed + active + queue_depth, ordered
 * latency percentiles). A document carrying a "server" block may have
 * an empty "runs" array. Returns human-readable problems; empty means
 * valid.
 */
std::vector<std::string> validateMetricsDocument(const JsonValue &doc);

} // namespace tia

#endif // TIA_OBS_METRICS_HH
