#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tia {

JsonValue &
JsonValue::operator[](const std::string &key)
{
    kind_ = Kind::Object;
    for (auto &member : members_) {
        if (member.first == key)
            return member.second;
    }
    members_.emplace_back(key, JsonValue{});
    return members_.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &member : members_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

namespace {

void
dumpString(std::string &out, const std::string &value)
{
    out += '"';
    for (char c : value) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
indent(std::string &out, unsigned depth)
{
    out.append(2 * static_cast<std::size_t>(depth), ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string &out, unsigned depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::Number: {
        char buf[64];
        if (isInt_) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(int_));
        } else if (!std::isfinite(num_)) {
            // JSON has no NaN/inf: an undefined value (e.g. the CPI of
            // a PE that retired nothing) serializes as null.
            out += "null";
            return;
        } else {
            std::snprintf(buf, sizeof(buf), "%.9g", num_);
        }
        out += buf;
        return;
      }
      case Kind::String:
        dumpString(out, str_);
        return;
      case Kind::Array: {
        if (items_.empty()) {
            out += "[]";
            return;
        }
        // Arrays of scalars print inline; arrays with any container
        // element print one element per line.
        bool nested = false;
        for (const auto &item : items_)
            nested = nested || item.isArray() || item.isObject();
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (nested) {
                out += '\n';
                indent(out, depth + 1);
            }
            items_[i].dumpTo(out, depth + 1);
            if (i + 1 < items_.size())
                out += nested ? "," : ", ";
        }
        if (nested) {
            out += '\n';
            indent(out, depth);
        }
        out += ']';
        return;
      }
      case Kind::Object: {
        if (members_.empty()) {
            out += "{}";
            return;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            indent(out, depth + 1);
            dumpString(out, members_[i].first);
            out += ": ";
            members_[i].second.dumpTo(out, depth + 1);
            if (i + 1 < members_.size())
                out += ',';
            out += '\n';
        }
        indent(out, depth);
        out += '}';
        return;
      }
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out, 0);
    out += '\n';
    return out;
}

namespace {

/** Recursive-descent parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    run(std::string *error)
    {
        auto value = parseValue();
        skipSpace();
        if (value.has_value() && pos_ != text_.size()) {
            fail("trailing characters after the document");
            value.reset();
        }
        if (!value.has_value() && error != nullptr)
            *error = error_;
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    fail(const std::string &what)
    {
        if (error_.empty()) {
            error_ = what + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"')) {
            fail("expected a string");
            return std::nullopt;
        }
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return std::nullopt;
                }
                const unsigned long code = std::strtoul(
                    std::string(text_.substr(pos_, 4)).c_str(), nullptr,
                    16);
                pos_ += 4;
                // Metrics documents are ASCII; anything else keeps
                // only the low byte (good enough for a checker).
                out += static_cast<char>(code & 0x7f);
                break;
              }
              default:
                fail("bad escape");
                return std::nullopt;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<JsonValue>
    parseValue()
    {
        skipSpace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            auto str = parseString();
            if (!str.has_value())
                return std::nullopt;
            return JsonValue(std::move(*str));
        }
        if (literal("true"))
            return JsonValue(true);
        if (literal("false"))
            return JsonValue(false);
        if (literal("null"))
            return JsonValue();
        return parseNumber();
    }

    std::optional<JsonValue>
    parseNumber()
    {
        const std::size_t start = pos_;
        bool isInt = true;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isInt = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) {
            fail("expected a value");
            return std::nullopt;
        }
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        if (isInt) {
            const long long v = std::strtoll(token.c_str(), &end, 10);
            if (end == token.c_str() + token.size())
                return JsonValue(static_cast<std::int64_t>(v));
        }
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            fail("malformed number");
            return std::nullopt;
        }
        return JsonValue(v);
    }

    std::optional<JsonValue>
    parseArray()
    {
        consume('[');
        JsonValue out = JsonValue::array();
        skipSpace();
        if (consume(']'))
            return out;
        while (true) {
            auto value = parseValue();
            if (!value.has_value())
                return std::nullopt;
            out.push(std::move(*value));
            if (consume(','))
                continue;
            if (consume(']'))
                return out;
            fail("expected ',' or ']'");
            return std::nullopt;
        }
    }

    std::optional<JsonValue>
    parseObject()
    {
        consume('{');
        JsonValue out = JsonValue::object();
        skipSpace();
        if (consume('}'))
            return out;
        while (true) {
            skipSpace();
            auto key = parseString();
            if (!key.has_value())
                return std::nullopt;
            if (!consume(':')) {
                fail("expected ':'");
                return std::nullopt;
            }
            auto value = parseValue();
            if (!value.has_value())
                return std::nullopt;
            out[*key] = std::move(*value);
            if (consume(','))
                continue;
            if (consume('}'))
                return out;
            fail("expected ',' or '}'");
            return std::nullopt;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::optional<JsonValue>
JsonValue::parse(std::string_view text, std::string *error)
{
    return Parser(text).run(error);
}

} // namespace tia
