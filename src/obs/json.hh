/**
 * @file
 * Minimal JSON document tree for the observability layer: build,
 * serialize and parse tia-metrics/v1 documents without external
 * dependencies.
 *
 * Numbers keep their integer-ness: a value built from an integral type
 * serializes without a decimal point (counters stay exact well past
 * 2^53 would-be-double territory), while doubles serialize with %.9g.
 * Non-finite doubles serialize as `null` — JSON has no NaN/inf, and a
 * NaN CPI (no retirements, see PerfCounters::cpi) must survive a
 * round trip as "no value" rather than corrupt the document.
 *
 * The parser accepts strict JSON (no comments, no trailing commas) and
 * exists so the schema checker (tools/tia_metrics_check.cc) and the
 * tests can validate what the tools emitted.
 */

#ifndef TIA_OBS_JSON_HH
#define TIA_OBS_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tia {

/** One JSON value: null, bool, number, string, array or object. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    JsonValue(bool value) : kind_(Kind::Bool), bool_(value) {}
    JsonValue(double value) : kind_(Kind::Number), num_(value) {}
    JsonValue(std::int64_t value)
        : kind_(Kind::Number), num_(static_cast<double>(value)),
          int_(value), isInt_(true)
    {}
    JsonValue(std::uint64_t value)
        : JsonValue(static_cast<std::int64_t>(value))
    {}
    JsonValue(int value) : JsonValue(static_cast<std::int64_t>(value)) {}
    JsonValue(unsigned value) : JsonValue(static_cast<std::int64_t>(value))
    {}
    JsonValue(const char *value) : kind_(Kind::String), str_(value) {}
    JsonValue(std::string value)
        : kind_(Kind::String), str_(std::move(value))
    {}

    static JsonValue
    array()
    {
        JsonValue v;
        v.kind_ = Kind::Array;
        return v;
    }

    static JsonValue
    object()
    {
        JsonValue v;
        v.kind_ = Kind::Object;
        return v;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return bool_; }
    double number() const { return num_; }
    const std::string &str() const { return str_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue> &items() const { return items_; }

    /** Object members in insertion order (empty unless isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Append to an array (converts a Null value into an array). */
    void
    push(JsonValue value)
    {
        kind_ = Kind::Array;
        items_.push_back(std::move(value));
    }

    /**
     * Object member access; creates the member (and converts a Null
     * value into an object) if absent.
     */
    JsonValue &operator[](const std::string &key);

    /** Lookup without creation; nullptr if absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Serialize with 2-space indentation per nesting level. */
    std::string dump() const;

    /** Parse strict JSON; on failure returns nullopt and sets @p error. */
    static std::optional<JsonValue> parse(std::string_view text,
                                          std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, unsigned depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::int64_t int_ = 0;
    bool isInt_ = false;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace tia

#endif // TIA_OBS_JSON_HH
