/**
 * @file
 * Chrome trace_event exporter: serializes the TraceEvent stream as a
 * JSON array loadable in chrome://tracing / Perfetto.
 *
 * Track layout: one process (pid) per PE, with thread (tid) 0 carrying
 * the issue-slot timeline (attributions, issues, quashes, predictor
 * outcomes, park/wake/halt instants) and threads 1..depth carrying one
 * track per pipeline stage (Cycles level StageOccupancy events).
 * Channel depths appear as counter tracks under a reserved pid.
 * Timestamps are raw cycle numbers (the "ts" unit is one cycle, not a
 * microsecond); durations of per-cycle spans are 1.
 *
 * The exporter streams into an in-memory string; call writeTo() (or
 * finish()) once after the run. Metadata (process/thread names) should
 * be registered with setPeMetadata() before recording starts so the
 * document leads with it.
 */

#ifndef TIA_OBS_CHROME_TRACE_HH
#define TIA_OBS_CHROME_TRACE_HH

#include <string>
#include <vector>

#include "obs/trace.hh"

namespace tia {

/** Reserved Chrome pid for the channel counter tracks. */
inline constexpr std::uint32_t kChromeChannelPid = 1000000;

class ChromeTraceSink : public TraceSink
{
  public:
    ChromeTraceSink();

    /**
     * Name PE @p pe's process and stage threads, e.g.
     * setPeMetadata(0, "PE 0 (T|DX +P+Q)", {"T", "DX"}).
     */
    void setPeMetadata(unsigned pe, const std::string &label,
                       const std::vector<std::string> &stageNames);

    void record(const TraceEvent &event) override;

    /** Number of events recorded (metadata excluded). */
    std::uint64_t recorded() const { return recorded_; }

    /** Close the JSON array and return the whole document. */
    std::string finish() const;

    /** Serialize to @p path; returns false if the file cannot open. */
    bool writeTo(const std::string &path) const;

  private:
    void beginEvent(const char *ph, std::uint32_t pid, std::uint32_t tid,
                    Cycle ts, const std::string &name);

    std::string out_;
    bool first_ = true;
    std::uint64_t recorded_ = 0;
};

} // namespace tia

#endif // TIA_OBS_CHROME_TRACE_HH
