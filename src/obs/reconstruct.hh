/**
 * @file
 * Trace-derived counter reconstruction: folds a TraceEvent stream back
 * into per-PE PerfCounters, independently of the simulator's own
 * accounting. Because every counter-relevant event is emitted at the
 * statement that increments the counter (see obs/trace.hh), the
 * reconstruction is bit-identical to the live counters — the standing
 * cross-check on the scheduler fast path and sleep/wake optimizations
 * (tests/test_observability.cc).
 *
 * Reconstructed fields: cycles, the six issue-slot attribution buckets,
 * predicateWrites, predictions, mispredictions, faultsInjected and
 * faultRecoveries. Dequeues/enqueues are channel-side effects with no
 * per-event trace record; they are left zero and excluded from the
 * cross-check.
 */

#ifndef TIA_OBS_RECONSTRUCT_HH
#define TIA_OBS_RECONSTRUCT_HH

#include <vector>

#include "obs/trace.hh"
#include "uarch/counters.hh"

namespace tia {

/** Rebuilds per-PE counters from the event stream. */
class CpiReconstructor : public TraceSink
{
  public:
    void record(const TraceEvent &event) override;

    /** PEs seen so far (highest PE id + 1). */
    unsigned numPes() const { return static_cast<unsigned>(pes_.size()); }

    /** Counters rebuilt for PE @p pe (reconstructed fields only). */
    PerfCounters counters(unsigned pe) const;

    /** Issued-but-unretired (and unflushed) instructions at stream end. */
    unsigned inFlight(unsigned pe) const;

    /** True once PE @p pe's halt retirement was observed. */
    bool halted(unsigned pe) const;

    /** Counter-relevant events folded (attribution cross-check size). */
    std::uint64_t totalEvents() const { return totalEvents_; }

  private:
    struct PeState
    {
        PerfCounters c;
        std::uint64_t issued = 0;
        std::uint64_t flushQuashed = 0;
        bool halted = false;
    };

    PeState &state(std::uint32_t pe);

    std::vector<PeState> pes_;
    std::uint64_t totalEvents_ = 0;
};

} // namespace tia

#endif // TIA_OBS_RECONSTRUCT_HH
