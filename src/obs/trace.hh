/**
 * @file
 * Cycle-accurate trace events: the observability layer's wire format.
 *
 * A TraceSink receives one compact TraceEvent per observable
 * micro-event — issue-slot attribution, issues, retirements, quashes,
 * predictor outcomes, stage occupancy, queue depths and park/wake
 * transitions — emitted by PipelinedPe and CycleFabric when a sink is
 * installed. With no sink installed every emission site is a single
 * predictable null-pointer test, so tracing costs nothing when off
 * (asserted against BENCH_throughput.json by bench_sim_throughput).
 *
 * The counter cross-check contract: every event that corresponds to a
 * PerfCounters increment is emitted at exactly the statement that
 * performs the increment, so a CpiReconstructor folding the event
 * stream rebuilds the issue-slot attribution counters bit-identically
 * (asserted by tests/test_observability.cc under both the mask-based
 * scheduler fast path and the virtual QueueStatusView reference path).
 *
 * Timestamps are PE-local cycle numbers. Events from a single PE are
 * monotone except for sleep settlement: a parked PE's skipped cycles
 * are accounted lazily, so their no-trigger attributions appear in the
 * stream when the PE wakes (still in per-PE cycle order). Consumers
 * must not assume global timestamp order across PEs.
 */

#ifndef TIA_OBS_TRACE_HH
#define TIA_OBS_TRACE_HH

#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace tia {

/** How much a sink is asked to observe. */
enum class TraceLevel : std::uint8_t
{
    /** Counter-relevant events only (issues, retires, predictions...). */
    Events,
    /** Events plus per-cycle stage occupancy and queue depths. */
    Cycles,
};

/** Discriminator for TraceEvent. */
enum class TraceEventKind : std::uint8_t
{
    /**
     * One issue-slot cycle lost to the bucket in `arg` (a TraceBucket).
     * Emitted where the corresponding PerfCounters stall bucket
     * increments; also used for the lazily settled no-trigger cycles
     * of a sleeping PE.
     */
    Attribution,
    /** An instruction issued. index = instruction slot, value = id. */
    Issue,
    /** An instruction retired. index = slot, value = id, arg = flags. */
    Retire,
    /**
     * An issued instruction (or the issue slot itself) was quashed on
     * misprediction. arg bit kQuashIssueSlot distinguishes the squashed
     * issue cycle (which also counts one cycle) from a flushed
     * in-flight instruction (whose cycle was counted at issue).
     */
    Quash,
    /**
     * A predicate prediction was made. arg = predicate index, value
     * bit 0 = predicted value, bit 1 = prediction inverted by fault
     * injection.
     */
    Predict,
    /**
     * A prediction resolved at writeback. arg = predicate index, value
     * bit 0 = actual value, bit 1 = mispredict, bit 2 = an injected
     * flip was repaired by the rollback.
     */
    Resolve,
    /**
     * Stage `arg` holds instruction `index` (issue id `value`) this
     * cycle. Cycles level only.
     */
    StageOccupancy,
    /**
     * Channel `index` has committed occupancy `value` at the end of
     * this cycle. Emitted by the fabric for channels active this
     * cycle; pe is kChannelAgent. Cycles level only.
     */
    QueueDepth,
    /** The fabric parked this PE on the idle-sleep list. */
    Park,
    /** The fabric woke this PE (a watched channel reported activity). */
    Wake,
    /** This PE's halt retired. */
    Halt,
};

/** Attribution buckets, mirroring the PerfCounters stall fields. */
enum class TraceBucket : std::uint8_t
{
    PredicateHazard,
    DataHazard,
    Forbidden,
    NoTrigger,
};

/** Quash arg flag: the quash claimed this cycle's issue slot. */
inline constexpr std::uint8_t kQuashIssueSlot = 1;

/** Retire arg flag: the retired instruction wrote a predicate. */
inline constexpr std::uint8_t kRetireWrotePredicate = 1;

/** TraceEvent::pe value for fabric-level (channel) events. */
inline constexpr std::uint32_t kChannelAgent = 0xffffffffu;

/** One observable micro-event (24 bytes). */
struct TraceEvent
{
    Cycle cycle = 0;        ///< PE-local cycle (fabric cycle for channels).
    std::uint32_t pe = 0;   ///< Emitting PE, or kChannelAgent.
    TraceEventKind kind = TraceEventKind::Attribution;
    std::uint8_t arg = 0;   ///< Kind-specific small argument.
    std::uint16_t index = 0; ///< Kind-specific index (slot, channel...).
    std::uint64_t value = 0; ///< Kind-specific payload.

    bool operator==(const TraceEvent &) const = default;
};

/** Receiver of trace events. Implementations must tolerate the
 *  non-global timestamp order described in the file comment. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void record(const TraceEvent &event) = 0;
};

/** Fans one event stream out to several sinks (e.g. a Chrome exporter
 *  and a CpiReconstructor cross-check in the same run). */
class TeeSink : public TraceSink
{
  public:
    void add(TraceSink *sink) { sinks_.push_back(sink); }

    void
    record(const TraceEvent &event) override
    {
        for (TraceSink *sink : sinks_)
            sink->record(event);
    }

  private:
    std::vector<TraceSink *> sinks_;
};

} // namespace tia

#endif // TIA_OBS_TRACE_HH
