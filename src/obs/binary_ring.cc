#include "obs/binary_ring.hh"

#include <cstdio>
#include <cstring>

#include "core/logging.hh"

namespace tia {

BinaryRingSink::BinaryRingSink(std::size_t capacity) : ring_(capacity)
{
    fatalIf(capacity == 0, "trace ring capacity must be positive");
}

const BinaryTraceRecord &
BinaryRingSink::at(std::size_t i) const
{
    panicIf(i >= stored_, "trace ring index out of range");
    // When full, the oldest record sits at next_ (the slot about to be
    // overwritten); before wraparound it sits at 0.
    const std::size_t base = stored_ == ring_.size() ? next_ : 0;
    std::size_t index = base + i;
    if (index >= ring_.size())
        index -= ring_.size();
    return ring_[index];
}

bool
BinaryRingSink::writeTo(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        return false;
    BinaryTraceFileHeader header;
    header.totalRecorded = total_;
    header.stored = stored_;
    bool ok =
        std::fwrite(&header, sizeof(header), 1, file) == 1;
    for (std::size_t i = 0; ok && i < stored_; ++i) {
        const BinaryTraceRecord &record = at(i);
        ok = std::fwrite(&record, sizeof(record), 1, file) == 1;
    }
    return std::fclose(file) == 0 && ok;
}

bool
readBinaryTrace(const std::string &path,
                std::vector<BinaryTraceRecord> &records,
                BinaryTraceFileHeader *header)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return false;
    BinaryTraceFileHeader head;
    bool ok = std::fread(&head, sizeof(head), 1, file) == 1;
    const BinaryTraceFileHeader expected;
    ok = ok &&
         std::memcmp(head.magic, expected.magic, sizeof(head.magic)) == 0 &&
         head.version == expected.version &&
         head.recordBytes == sizeof(BinaryTraceRecord);
    if (ok) {
        std::vector<BinaryTraceRecord> loaded(
            static_cast<std::size_t>(head.stored));
        ok = loaded.empty() ||
             std::fread(loaded.data(), sizeof(BinaryTraceRecord),
                        loaded.size(), file) == loaded.size();
        if (ok) {
            records = std::move(loaded);
            if (header != nullptr)
                *header = head;
        }
    }
    std::fclose(file);
    return ok;
}

} // namespace tia
