#include "obs/metrics.hh"

#include <cmath>
#include <cstdio>

namespace tia {

bool
MetricsRegistry::writeTo(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        return false;
    const std::string doc = dump();
    const std::size_t written =
        std::fwrite(doc.data(), 1, doc.size(), file);
    return std::fclose(file) == 0 && written == doc.size();
}

JsonValue
countersJson(const PerfCounters &c)
{
    JsonValue out = JsonValue::object();
    out["cycles"] = c.cycles;
    out["retired"] = c.retired;
    out["quashed"] = c.quashed;
    out["predicate_hazard"] = c.predicateHazard;
    out["data_hazard"] = c.dataHazard;
    out["forbidden"] = c.forbidden;
    out["no_trigger"] = c.noTrigger;
    out["predicate_writes"] = c.predicateWrites;
    out["predictions"] = c.predictions;
    out["mispredictions"] = c.mispredictions;
    out["dequeues"] = c.dequeues;
    out["enqueues"] = c.enqueues;
    out["faults_injected"] = c.faultsInjected;
    out["fault_recoveries"] = c.faultRecoveries;
    return out;
}

JsonValue
cpiStackJson(const CpiStack &stack)
{
    JsonValue out = JsonValue::object();
    out["retired"] = stack.retired;
    out["quashed"] = stack.quashed;
    out["predicate_hazard"] = stack.predicateHazard;
    out["data_hazard"] = stack.dataHazard;
    out["forbidden"] = stack.forbidden;
    out["no_trigger"] = stack.noTrigger;
    out["total"] = stack.total();
    return out;
}

JsonValue
peMetricsJson(unsigned pe, const PerfCounters &counters, unsigned inFlight)
{
    JsonValue out = JsonValue::object();
    out["pe"] = pe;
    out["in_flight"] = inFlight;
    // A NaN CPI (nothing retired) serializes as null by design.
    out["cpi"] = counters.cpi();
    out["counters"] = countersJson(counters);
    out["cpi_stack"] = cpiStackJson(cpiStack(counters));
    return out;
}

JsonValue
sleepMetricsJson(std::uint64_t executed, std::uint64_t skipped)
{
    JsonValue out = JsonValue::object();
    out["pe_steps_executed"] = executed;
    out["pe_steps_skipped"] = skipped;
    const std::uint64_t total = executed + skipped;
    out["skip_ratio"] =
        total > 0 ? static_cast<double>(skipped) /
                        static_cast<double>(total)
                  : 0.0;
    return out;
}

JsonValue
resolutionMetricsJson(std::uint64_t incrementalSkips,
                      std::uint64_t fullResolves)
{
    JsonValue out = JsonValue::object();
    out["triggers_resolved"] = incrementalSkips + fullResolves;
    out["incremental_skips"] = incrementalSkips;
    out["full_resolves"] = fullResolves;
    return out;
}

namespace {

/** Collects validation problems with a location prefix. */
class Checker
{
  public:
    std::vector<std::string> problems;

    void
    fail(const std::string &where, const std::string &what)
    {
        problems.push_back(where + ": " + what);
    }

    /** Fetch a member, recording a problem when absent. */
    const JsonValue *
    require(const JsonValue &obj, const std::string &where,
            const std::string &key)
    {
        const JsonValue *value = obj.find(key);
        if (value == nullptr)
            fail(where, "missing \"" + key + "\"");
        return value;
    }

    /** Fetch a member that must be a non-negative number. */
    bool
    number(const JsonValue &obj, const std::string &where,
           const std::string &key, double &out)
    {
        const JsonValue *value = require(obj, where, key);
        if (value == nullptr)
            return false;
        if (!value->isNumber() || value->number() < 0.0) {
            fail(where, "\"" + key + "\" must be a non-negative number");
            return false;
        }
        out = value->number();
        return true;
    }
};

void
checkPe(Checker &check, const JsonValue &pe, const std::string &where)
{
    if (!pe.isObject()) {
        check.fail(where, "must be an object");
        return;
    }
    const JsonValue *counters = check.require(pe, where, "counters");
    if (counters == nullptr || !counters->isObject()) {
        if (counters != nullptr)
            check.fail(where, "\"counters\" must be an object");
        return;
    }
    double cycles = 0, retired = 0, quashed = 0, predHazard = 0;
    double dataHazard = 0, forbidden = 0, noTrigger = 0;
    const std::string cwhere = where + ".counters";
    bool ok = check.number(*counters, cwhere, "cycles", cycles);
    ok &= check.number(*counters, cwhere, "retired", retired);
    ok &= check.number(*counters, cwhere, "quashed", quashed);
    ok &= check.number(*counters, cwhere, "predicate_hazard", predHazard);
    ok &= check.number(*counters, cwhere, "data_hazard", dataHazard);
    ok &= check.number(*counters, cwhere, "forbidden", forbidden);
    ok &= check.number(*counters, cwhere, "no_trigger", noTrigger);
    double inFlight = 0;
    ok &= check.number(pe, where, "in_flight", inFlight);
    if (ok) {
        // The attribution contract: every cycle belongs to exactly one
        // bucket, except the cycles claimed by still-in-flight issues.
        const double sum = retired + quashed + predHazard + dataHazard +
                           forbidden + noTrigger + inFlight;
        if (sum != cycles) {
            check.fail(where, "attribution buckets + in_flight (" +
                                  std::to_string(sum) +
                                  ") != cycles (" +
                                  std::to_string(cycles) + ")");
        }
    }
    const JsonValue *cpi = check.require(pe, where, "cpi");
    if (cpi != nullptr) {
        if (cpi->isNull()) {
            if (retired != 0) {
                check.fail(where,
                           "\"cpi\" is null but instructions retired");
            }
        } else if (!cpi->isNumber()) {
            check.fail(where, "\"cpi\" must be a number or null");
        } else if (retired == 0) {
            check.fail(where, "\"cpi\" must be null when nothing "
                              "retired");
        } else if (std::abs(cpi->number() - cycles / retired) > 1e-6) {
            check.fail(where, "\"cpi\" does not equal cycles/retired");
        }
    }
}

/**
 * A "resolution" block (run-level or the sweep aggregate). The
 * identity is the resolution cache's exhaustive partition: every
 * trigger resolution is either an incremental skip (memoized verdict
 * still valid) or a full resolve. @p bitplanes additionally requires
 * the SoA kernel's "bitplane_ops" counter (sweep aggregate only —
 * host-side, not part of the per-run architectural identity).
 */
void
checkResolution(Checker &check, const JsonValue &resolution,
                const std::string &where, bool bitplanes)
{
    if (!resolution.isObject()) {
        check.fail(where, "must be an object");
        return;
    }
    double resolved = 0, skips = 0, fulls = 0;
    bool ok =
        check.number(resolution, where, "triggers_resolved", resolved);
    ok &= check.number(resolution, where, "incremental_skips", skips);
    ok &= check.number(resolution, where, "full_resolves", fulls);
    if (bitplanes) {
        double planeOps = 0;
        check.number(resolution, where, "bitplane_ops", planeOps);
    }
    if (ok && skips + fulls != resolved) {
        check.fail(where, "incremental_skips + full_resolves (" +
                              std::to_string(skips + fulls) +
                              ") != triggers_resolved (" +
                              std::to_string(resolved) + ")");
    }
}

void
checkRun(Checker &check, const JsonValue &run, const std::string &where)
{
    if (!run.isObject()) {
        check.fail(where, "must be an object");
        return;
    }
    const JsonValue *uarch = check.require(run, where, "uarch");
    if (uarch != nullptr && !uarch->isString())
        check.fail(where, "\"uarch\" must be a string");
    const JsonValue *status = check.require(run, where, "status");
    if (status != nullptr && !status->isString())
        check.fail(where, "\"status\" must be a string");
    double cycles = 0;
    check.number(run, where, "cycles", cycles);

    const JsonValue *pes = check.require(run, where, "pes");
    double peCycleSum = 0.0;
    std::size_t peCount = 0;
    if (pes != nullptr) {
        if (!pes->isArray()) {
            check.fail(where, "\"pes\" must be an array");
        } else {
            peCount = pes->items().size();
            for (std::size_t i = 0; i < peCount; ++i) {
                const std::string pwhere =
                    where + ".pes[" + std::to_string(i) + "]";
                checkPe(check, pes->items()[i], pwhere);
                if (const JsonValue *counters =
                        pes->items()[i].find("counters")) {
                    if (const JsonValue *c = counters->find("cycles")) {
                        if (c->isNumber())
                            peCycleSum += c->number();
                    }
                }
            }
        }
    }

    const JsonValue *sleep = run.find("sleep");
    if (sleep != nullptr && sleep->isObject()) {
        const std::string swhere = where + ".sleep";
        double executed = 0, skipped = 0, ratio = 0;
        bool ok =
            check.number(*sleep, swhere, "pe_steps_executed", executed);
        ok &= check.number(*sleep, swhere, "pe_steps_skipped", skipped);
        ok &= check.number(*sleep, swhere, "skip_ratio", ratio);
        if (ok && ratio > 1.0)
            check.fail(swhere, "skip_ratio above 1");
        // Executed + skipped steps account for every PE cycle — but
        // only checkable when the document reports every PE.
        const JsonValue *numPes = run.find("num_pes");
        if (ok && numPes != nullptr && numPes->isNumber() &&
            static_cast<std::size_t>(numPes->number()) == peCount &&
            executed + skipped != peCycleSum) {
            check.fail(swhere,
                       "pe_steps_executed + pe_steps_skipped (" +
                           std::to_string(executed + skipped) +
                           ") != sum of per-PE cycles (" +
                           std::to_string(peCycleSum) + ")");
        }
    }

    if (const JsonValue *resolution = run.find("resolution"))
        checkResolution(check, *resolution, where + ".resolution", false);
}

// The optional root "cache" block (SimCache::statsJson). Lookups are
// exhaustively partitioned: every lookup is exactly one of a hit, a
// miss (the leader computing), or a coalesced wait on a leader; and a
// verified hit is still a hit.
void
checkCacheStats(Checker &check, const JsonValue &cache)
{
    const std::string where = "cache";
    if (!cache.isObject()) {
        check.fail(where, "must be an object");
        return;
    }
    double lookups = 0, hits = 0, misses = 0, coalesced = 0;
    double verified = 0;
    bool ok = check.number(cache, where, "lookups", lookups);
    ok &= check.number(cache, where, "hits", hits);
    ok &= check.number(cache, where, "misses", misses);
    ok &= check.number(cache, where, "coalesced", coalesced);
    ok &= check.number(cache, where, "verified_hits", verified);
    if (!ok)
        return;
    if (hits + misses + coalesced != lookups) {
        check.fail(where, "hits + misses + coalesced (" +
                              std::to_string(hits + misses + coalesced) +
                              ") != lookups (" + std::to_string(lookups) +
                              ")");
    }
    if (verified > hits)
        check.fail(where, "verified_hits exceeds hits");
}

// The optional root "sweep" block: the batched lockstep accounting
// ("batch", batchStatsJson) and/or the trigger-resolution aggregate
// ("resolution"). The batch identities are the runner's lane
// classification: every lane is a hit or a miss (no cache = all
// misses), every miss simulates (verify-mode hits re-simulate too, so
// simulated can exceed misses but never lanes), only hit lanes verify,
// and only simulated lanes can be cancelled. A batch block with
// "auto_disabled" true records a request that fell back to scalar
// (`--jobs 1`): its width/group counters are legitimately zero.
void
checkSweepStats(Checker &check, const JsonValue &sweep)
{
    const std::string where = "sweep";
    if (!sweep.isObject()) {
        check.fail(where, "must be an object");
        return;
    }
    const JsonValue *batch = sweep.find("batch");
    const JsonValue *resolution = sweep.find("resolution");
    if (batch == nullptr && resolution == nullptr) {
        check.fail(where, "missing both \"batch\" and \"resolution\" "
                          "(an empty sweep block says nothing)");
        return;
    }
    if (resolution != nullptr)
        checkResolution(check, *resolution, where + ".resolution", true);
    if (batch == nullptr)
        return;
    const std::string bwhere = where + ".batch";
    if (!batch->isObject()) {
        check.fail(bwhere, "must be an object");
        return;
    }
    bool autoDisabled = false;
    if (const JsonValue *flag = batch->find("auto_disabled")) {
        if (flag->kind() != JsonValue::Kind::Bool)
            check.fail(bwhere, "\"auto_disabled\" must be a boolean");
        else
            autoDisabled = flag->boolean();
    }
    double width = 0, groups = 0, lanes = 0, hits = 0, misses = 0;
    double simulated = 0, verified = 0, cancelled = 0;
    bool ok = check.number(*batch, bwhere, "width", width);
    ok &= check.number(*batch, bwhere, "groups", groups);
    ok &= check.number(*batch, bwhere, "lanes", lanes);
    ok &= check.number(*batch, bwhere, "hits", hits);
    ok &= check.number(*batch, bwhere, "misses", misses);
    ok &= check.number(*batch, bwhere, "simulated", simulated);
    ok &= check.number(*batch, bwhere, "verified", verified);
    ok &= check.number(*batch, bwhere, "cancelled", cancelled);
    if (!ok)
        return;
    if (autoDisabled) {
        // Scalar fallback: nothing batched, so every counter is zero.
        if (width != 0 || groups != 0 || lanes != 0)
            check.fail(bwhere, "auto_disabled batch must report zero "
                               "width/groups/lanes");
        return;
    }
    if (width < 1)
        check.fail(bwhere, "width must be at least 1");
    if (groups < 1)
        check.fail(bwhere, "groups must be at least 1");
    if (lanes < groups)
        check.fail(bwhere, "lanes below groups (every group has at "
                           "least one lane)");
    if (hits + misses != lanes) {
        check.fail(bwhere, "hits + misses (" +
                               std::to_string(hits + misses) +
                               ") != lanes (" + std::to_string(lanes) +
                               ")");
    }
    if (simulated < misses)
        check.fail(bwhere, "simulated below misses (every miss lane "
                           "simulates)");
    if (simulated > lanes)
        check.fail(bwhere, "simulated exceeds lanes");
    if (verified > hits)
        check.fail(bwhere, "verified exceeds hits");
    if (cancelled > simulated)
        check.fail(bwhere, "cancelled exceeds simulated");
}

// The optional root "server" block (Server::serverStatsJson). The
// accounting identities are the service's no-silent-drop contract in
// arithmetic form: every received request is admitted, shed or
// rejected; every admitted request is in exactly one terminal (or
// still-live) bucket.
void
checkServerStats(Checker &check, const JsonValue &server)
{
    const std::string where = "server";
    if (!server.isObject()) {
        check.fail(where, "must be an object");
        return;
    }
    double received = 0, admitted = 0, rejected = 0, shed = 0;
    double shedQueueFull = 0, shedQuota = 0, shedDraining = 0;
    double completed = 0, cancelled = 0, cancelledDeadline = 0;
    double cancelledDisconnect = 0, failed = 0, hangs = 0;
    double active = 0, queueDepth = 0, queueCapacity = 0;
    double queueHighWater = 0, connections = 0, connectionsTotal = 0;
    bool ok = check.number(server, where, "received", received);
    ok &= check.number(server, where, "admitted", admitted);
    ok &= check.number(server, where, "rejected", rejected);
    ok &= check.number(server, where, "shed", shed);
    ok &= check.number(server, where, "shed_queue_full", shedQueueFull);
    ok &= check.number(server, where, "shed_quota", shedQuota);
    ok &= check.number(server, where, "shed_draining", shedDraining);
    ok &= check.number(server, where, "completed", completed);
    ok &= check.number(server, where, "cancelled", cancelled);
    ok &= check.number(server, where, "cancelled_deadline",
                       cancelledDeadline);
    ok &= check.number(server, where, "cancelled_disconnect",
                       cancelledDisconnect);
    ok &= check.number(server, where, "failed", failed);
    ok &= check.number(server, where, "hangs", hangs);
    ok &= check.number(server, where, "active", active);
    ok &= check.number(server, where, "queue_depth", queueDepth);
    ok &= check.number(server, where, "queue_capacity", queueCapacity);
    ok &= check.number(server, where, "queue_high_water", queueHighWater);
    ok &= check.number(server, where, "connections", connections);
    ok &= check.number(server, where, "connections_total",
                       connectionsTotal);
    if (ok) {
        if (admitted + shed + rejected != received) {
            check.fail(where,
                       "admitted + shed + rejected (" +
                           std::to_string(admitted + shed + rejected) +
                           ") != received (" + std::to_string(received) +
                           ")");
        }
        if (shedQueueFull + shedQuota + shedDraining != shed)
            check.fail(where, "shed buckets do not sum to shed");
        if (completed + cancelled + failed + active + queueDepth !=
            admitted) {
            check.fail(where,
                       "completed + cancelled + failed + active + "
                       "queue_depth (" +
                           std::to_string(completed + cancelled + failed +
                                          active + queueDepth) +
                           ") != admitted (" + std::to_string(admitted) +
                           ")");
        }
        if (cancelledDeadline + cancelledDisconnect != cancelled)
            check.fail(where, "cancelled buckets do not sum to cancelled");
        if (hangs > completed)
            check.fail(where, "hangs exceeds completed");
        if (queueDepth > queueCapacity)
            check.fail(where, "queue_depth exceeds queue_capacity");
        if (queueHighWater > queueCapacity)
            check.fail(where, "queue_high_water exceeds queue_capacity");
        if (connections > connectionsTotal)
            check.fail(where, "connections exceeds connections_total");
    }
    const JsonValue *latency = check.require(server, where, "latency_ms");
    if (latency != nullptr && latency->isObject()) {
        const std::string lwhere = where + ".latency_ms";
        double count = 0, p50 = 0, p99 = 0, maxMs = 0;
        bool lok = check.number(*latency, lwhere, "count", count);
        lok &= check.number(*latency, lwhere, "p50", p50);
        lok &= check.number(*latency, lwhere, "p99", p99);
        lok &= check.number(*latency, lwhere, "max", maxMs);
        if (lok) {
            if (ok && count > completed)
                check.fail(lwhere, "count exceeds completed");
            if (count > 0 && (p50 > p99 || p99 > maxMs))
                check.fail(lwhere, "percentiles not ordered "
                                   "(p50 <= p99 <= max)");
        }
    } else if (latency != nullptr) {
        check.fail(where, "\"latency_ms\" must be an object");
    }
}

} // namespace

std::vector<std::string>
validateMetricsDocument(const JsonValue &doc)
{
    Checker check;
    if (!doc.isObject()) {
        check.fail("document", "top level must be an object");
        return check.problems;
    }
    const JsonValue *schema = check.require(doc, "document", "schema");
    if (schema != nullptr &&
        (!schema->isString() || schema->str() != kMetricsSchema)) {
        check.fail("document", std::string("\"schema\" must be \"") +
                                   kMetricsSchema + "\"");
    }
    const JsonValue *runs = check.require(doc, "document", "runs");
    if (runs != nullptr) {
        if (!runs->isArray()) {
            check.fail("document", "\"runs\" must be an array");
        } else if (runs->items().empty()) {
            // Service documents (tia-serve) legitimately carry zero
            // runs: their payload is the "server" block.
            if (doc.find("server") == nullptr)
                check.fail("document", "\"runs\" is empty");
        } else {
            for (std::size_t i = 0; i < runs->items().size(); ++i) {
                checkRun(check, runs->items()[i],
                         "runs[" + std::to_string(i) + "]");
            }
        }
    }
    if (const JsonValue *cache = doc.find("cache"))
        checkCacheStats(check, *cache);
    if (const JsonValue *sweep = doc.find("sweep"))
        checkSweepStats(check, *sweep);
    if (const JsonValue *server = doc.find("server"))
        checkServerStats(check, *server);
    return check.problems;
}

} // namespace tia
