#include "obs/reconstruct.hh"

#include "core/logging.hh"

namespace tia {

CpiReconstructor::PeState &
CpiReconstructor::state(std::uint32_t pe)
{
    if (pe >= pes_.size())
        pes_.resize(pe + 1);
    return pes_[pe];
}

void
CpiReconstructor::record(const TraceEvent &event)
{
    if (event.pe == kChannelAgent)
        return;
    PeState &s = state(event.pe);
    switch (event.kind) {
      case TraceEventKind::Attribution: {
        ++s.c.cycles;
        ++totalEvents_;
        switch (static_cast<TraceBucket>(event.arg)) {
          case TraceBucket::PredicateHazard:
            ++s.c.predicateHazard;
            return;
          case TraceBucket::DataHazard:
            ++s.c.dataHazard;
            return;
          case TraceBucket::Forbidden:
            ++s.c.forbidden;
            return;
          case TraceBucket::NoTrigger:
            ++s.c.noTrigger;
            return;
        }
        panic("Attribution event with unknown bucket");
      }
      case TraceEventKind::Issue:
        // An issue claims the cycle; its final attribution (retired or
        // quashed) arrives with a later Retire/Quash event.
        ++s.c.cycles;
        ++s.issued;
        ++totalEvents_;
        return;
      case TraceEventKind::Retire:
        ++s.c.retired;
        if (event.arg & kRetireWrotePredicate)
            ++s.c.predicateWrites;
        ++totalEvents_;
        return;
      case TraceEventKind::Quash:
        ++s.c.quashed;
        if (event.arg & kQuashIssueSlot) {
            // The squash consumed this cycle's issue slot too.
            ++s.c.cycles;
        } else {
            // A flushed in-flight instruction; its cycle was already
            // counted when it issued.
            ++s.flushQuashed;
        }
        ++totalEvents_;
        return;
      case TraceEventKind::Predict:
        ++s.c.predictions;
        if (event.value & 2)
            ++s.c.faultsInjected;
        ++totalEvents_;
        return;
      case TraceEventKind::Resolve:
        if (event.value & 2)
            ++s.c.mispredictions;
        if (event.value & 4)
            ++s.c.faultRecoveries;
        ++totalEvents_;
        return;
      case TraceEventKind::Halt:
        s.halted = true;
        return;
      case TraceEventKind::StageOccupancy:
      case TraceEventKind::QueueDepth:
      case TraceEventKind::Park:
      case TraceEventKind::Wake:
        return;
    }
}

PerfCounters
CpiReconstructor::counters(unsigned pe) const
{
    return pe < pes_.size() ? pes_[pe].c : PerfCounters{};
}

unsigned
CpiReconstructor::inFlight(unsigned pe) const
{
    if (pe >= pes_.size())
        return 0;
    const PeState &s = pes_[pe];
    return static_cast<unsigned>(s.issued - s.c.retired - s.flushQuashed);
}

bool
CpiReconstructor::halted(unsigned pe) const
{
    return pe < pes_.size() && pes_[pe].halted;
}

} // namespace tia
