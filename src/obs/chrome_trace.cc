#include "obs/chrome_trace.hh"

#include <cstdio>

namespace tia {

namespace {

const char *
attributionName(TraceBucket bucket)
{
    switch (bucket) {
      case TraceBucket::PredicateHazard:
        return "predicate-hazard";
      case TraceBucket::DataHazard:
        return "data-hazard";
      case TraceBucket::Forbidden:
        return "forbidden";
      case TraceBucket::NoTrigger:
        return "no-trigger";
    }
    return "?";
}

void
appendUint(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
}

} // namespace

ChromeTraceSink::ChromeTraceSink()
{
    out_ = "[\n";
}

void
ChromeTraceSink::beginEvent(const char *ph, std::uint32_t pid,
                            std::uint32_t tid, Cycle ts,
                            const std::string &name)
{
    if (!first_)
        out_ += ",\n";
    first_ = false;
    out_ += "{\"ph\":\"";
    out_ += ph;
    out_ += "\",\"pid\":";
    appendUint(out_, pid);
    out_ += ",\"tid\":";
    appendUint(out_, tid);
    out_ += ",\"ts\":";
    appendUint(out_, ts);
    out_ += ",\"name\":\"";
    out_ += name;
    out_ += '"';
}

void
ChromeTraceSink::setPeMetadata(unsigned pe, const std::string &label,
                               const std::vector<std::string> &stageNames)
{
    beginEvent("M", pe, 0, 0, "process_name");
    out_ += ",\"args\":{\"name\":\"" + label + "\"}}";
    beginEvent("M", pe, 0, 0, "thread_name");
    out_ += ",\"args\":{\"name\":\"issue\"}}";
    for (std::size_t s = 0; s < stageNames.size(); ++s) {
        beginEvent("M", pe, static_cast<std::uint32_t>(s + 1), 0,
                   "thread_name");
        out_ += ",\"args\":{\"name\":\"stage " + stageNames[s] + "\"}}";
    }
}

void
ChromeTraceSink::record(const TraceEvent &event)
{
    ++recorded_;
    switch (event.kind) {
      case TraceEventKind::Attribution:
        beginEvent("X", event.pe, 0, event.cycle,
                   attributionName(static_cast<TraceBucket>(event.arg)));
        out_ += ",\"dur\":1,\"cat\":\"stall\"}";
        return;
      case TraceEventKind::Issue:
        beginEvent("X", event.pe, 0, event.cycle, "issue");
        out_ += ",\"dur\":1,\"cat\":\"issue\",\"args\":{\"inst\":";
        appendUint(out_, event.index);
        out_ += ",\"id\":";
        appendUint(out_, event.value);
        out_ += "}}";
        return;
      case TraceEventKind::Retire:
        beginEvent("i", event.pe, 0, event.cycle, "retire");
        out_ += ",\"s\":\"t\",\"args\":{\"inst\":";
        appendUint(out_, event.index);
        out_ += ",\"id\":";
        appendUint(out_, event.value);
        out_ += ",\"pred_write\":";
        out_ += (event.arg & kRetireWrotePredicate) ? "true" : "false";
        out_ += "}}";
        return;
      case TraceEventKind::Quash:
        beginEvent("i", event.pe, 0, event.cycle,
                   (event.arg & kQuashIssueSlot) ? "quash-issue"
                                                 : "quash");
        out_ += ",\"s\":\"t\",\"args\":{\"id\":";
        appendUint(out_, event.value);
        out_ += "}}";
        return;
      case TraceEventKind::Predict:
        beginEvent("i", event.pe, 0, event.cycle, "predict");
        out_ += ",\"s\":\"t\",\"args\":{\"pred\":";
        appendUint(out_, event.arg);
        out_ += ",\"value\":";
        out_ += (event.value & 1) ? "true" : "false";
        out_ += ",\"fault_flipped\":";
        out_ += (event.value & 2) ? "true" : "false";
        out_ += "}}";
        return;
      case TraceEventKind::Resolve:
        beginEvent("i", event.pe, 0, event.cycle,
                   (event.value & 2) ? "mispredict" : "confirm");
        out_ += ",\"s\":\"t\",\"args\":{\"pred\":";
        appendUint(out_, event.arg);
        out_ += ",\"actual\":";
        out_ += (event.value & 1) ? "true" : "false";
        out_ += ",\"fault_recovered\":";
        out_ += (event.value & 4) ? "true" : "false";
        out_ += "}}";
        return;
      case TraceEventKind::StageOccupancy:
        beginEvent("X", event.pe, event.arg + 1u, event.cycle,
                   "i" + std::to_string(event.index));
        out_ += ",\"dur\":1,\"cat\":\"stage\",\"args\":{\"id\":";
        appendUint(out_, event.value);
        out_ += "}}";
        return;
      case TraceEventKind::QueueDepth:
        beginEvent("C", kChromeChannelPid, 0, event.cycle,
                   "ch" + std::to_string(event.index));
        out_ += ",\"args\":{\"occupancy\":";
        appendUint(out_, event.value);
        out_ += "}}";
        return;
      case TraceEventKind::Park:
        beginEvent("i", event.pe, 0, event.cycle, "park");
        out_ += ",\"s\":\"t\"}";
        return;
      case TraceEventKind::Wake:
        beginEvent("i", event.pe, 0, event.cycle, "wake");
        out_ += ",\"s\":\"t\"}";
        return;
      case TraceEventKind::Halt:
        beginEvent("i", event.pe, 0, event.cycle, "halt");
        out_ += ",\"s\":\"p\"}";
        return;
    }
}

std::string
ChromeTraceSink::finish() const
{
    return out_ + "\n]\n";
}

bool
ChromeTraceSink::writeTo(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        return false;
    const std::string doc = finish();
    const std::size_t written =
        std::fwrite(doc.data(), 1, doc.size(), file);
    return std::fclose(file) == 0 && written == doc.size();
}

} // namespace tia
