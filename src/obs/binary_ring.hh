/**
 * @file
 * Compact binary ring-buffer trace sink for long runs: the newest
 * `capacity` events are kept in a preallocated ring of fixed 24-byte
 * records; older events are overwritten (and counted as dropped).
 * Recording is a store plus two increments — cheap enough to leave on
 * for billion-cycle runs where a JSON exporter would be prohibitive.
 *
 * File format ("TIARING1"): a BinaryTraceFileHeader followed by the
 * stored records oldest-first. Everything is host-endian; the format
 * is a debugging aid for same-host consumers, not an interchange
 * format.
 */

#ifndef TIA_OBS_BINARY_RING_HH
#define TIA_OBS_BINARY_RING_HH

#include <cstddef>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace tia {

/** On-disk record: a TraceEvent with explicit field widths. */
struct BinaryTraceRecord
{
    std::uint64_t cycle = 0;
    std::uint32_t pe = 0;
    std::uint8_t kind = 0;
    std::uint8_t arg = 0;
    std::uint16_t index = 0;
    std::uint64_t value = 0;

    bool operator==(const BinaryTraceRecord &) const = default;
};

static_assert(sizeof(BinaryTraceRecord) == 24,
              "the ring record must stay packed at 24 bytes");

/** On-disk header preceding the records. */
struct BinaryTraceFileHeader
{
    char magic[8] = {'T', 'I', 'A', 'R', 'I', 'N', 'G', '1'};
    std::uint32_t version = 1;
    std::uint32_t recordBytes = sizeof(BinaryTraceRecord);
    std::uint64_t totalRecorded = 0; ///< Events ever seen.
    std::uint64_t stored = 0;        ///< Records that follow.
};

class BinaryRingSink : public TraceSink
{
  public:
    explicit BinaryRingSink(std::size_t capacity);

    void
    record(const TraceEvent &event) override
    {
        BinaryTraceRecord &slot = ring_[next_];
        slot.cycle = event.cycle;
        slot.pe = event.pe;
        slot.kind = static_cast<std::uint8_t>(event.kind);
        slot.arg = event.arg;
        slot.index = event.index;
        slot.value = event.value;
        next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
        if (stored_ < ring_.size())
            ++stored_;
        ++total_;
    }

    std::size_t capacity() const { return ring_.size(); }

    /** Records currently held (<= capacity). */
    std::size_t size() const { return stored_; }

    /** Events ever recorded. */
    std::uint64_t recorded() const { return total_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return total_ - stored_; }

    /** Stored record @p i, oldest first (i < size()). */
    const BinaryTraceRecord &at(std::size_t i) const;

    /** Write header + stored records to @p path. */
    bool writeTo(const std::string &path) const;

  private:
    std::vector<BinaryTraceRecord> ring_;
    std::size_t next_ = 0;   ///< Ring index of the next write.
    std::size_t stored_ = 0; ///< Valid records in the ring.
    std::uint64_t total_ = 0;
};

/**
 * Read back a trace file written by writeTo(); returns false (and
 * leaves @p records untouched) on a missing file or a bad header.
 */
bool readBinaryTrace(const std::string &path,
                     std::vector<BinaryTraceRecord> &records,
                     BinaryTraceFileHeader *header = nullptr);

} // namespace tia

#endif // TIA_OBS_BINARY_RING_HH
