// relay.s — two PEs handing tokens down a chain.
//
// PE 0 emits the integers 1..8 on its output 3; PE 1 doubles each and
// stores it to memory words 100..107 through its write port, halting
// on the end-of-stream tag.
//
//   tia-sim relay.s --pes 2 --connect 0.3:1.0 --write-port 1.1.2 \
//           --dump 100:8

.pe 0
// p1 p0 sequence the loop; p2 is the continue condition; p4 = done.
when %p == XXX1XXXX: halt;
when %p == XXX0XX00: add %r0, %r0, #1;     set %p = ZZZZZZ01;
when %p == XXX0XX01: mov %o3.0, %r0;       set %p = ZZZZZZ10;
when %p == XXX0XX10: ult %p2, %r0, #8;     set %p = ZZZZZZ11;
when %p == XXX0X111: nop;                  set %p = ZZZZZZ00;
when %p == XXX0X011: mov %o3.1, #0;        set %p = ZZZ1ZZZZ;

.pe 1
// p2 p1 p0 sequence the store; the end-of-stream tag halts.
when %p == XXXXX000 with %i0.0: sll %r1, %i0, #1; deq %i0; set %p = ZZZZZ001;
when %p == XXXXX001: add %o1.0, %r0, #100; set %p = ZZZZZ011;
when %p == XXXXX011: mov %o2.0, %r1;       set %p = ZZZZZ111;
when %p == XXXXX111: add %r0, %r0, #1;     set %p = ZZZZZ000;
when %p == XXXXX000 with %i0.1: halt;
