// fib.s — iterative Fibonacci on a single triggered PE.
//
// Computes fib(N) (with fib(0)=0, fib(1)=1) into r0 and stores it to
// memory word 0 through the conventional write port (%o1 = address,
// %o2 = data). For N = 20 the stored value is 6765.
//
//   tia-sim fib.s --dump 0
//   tia-sim fib.s -u "T|DX +P+Q" --dump 0

.def N 20

// p2..p0 sequence the loop body; p3 is the loop condition; p4 ends.
when %p == XXXXX000: mov %r1, #1;          set %p = ZZZZZ001;
when %p == XXXXX001: add %r3, %r0, %r1;    set %p = ZZZZZ010;
when %p == XXXXX010: mov %r0, %r1;         set %p = ZZZZZ011;
when %p == XXXXX011: mov %r1, %r3;         set %p = ZZZZZ100;
when %p == XXXXX100: add %r2, %r2, #1;     set %p = ZZZZZ101;
when %p == XXXXX101: ult %p3, %r2, N;      set %p = ZZZZZ110;
when %p == XXXX1110: nop;                  set %p = ZZZZZ001;
when %p == XXXX0110: mov %o1.0, #0;        set %p = ZZZZZ111;
when %p == XXX0X111: mov %o2.0, %r0;       set %p = ZZZ1ZZZZ;
when %p == XXX1X111: halt;
