/**
 * @file
 * A 2x2 mesh array (the paper's FPGA-prototype topology) computing a
 * prefix-sum pipeline: a stream of values enters at the north-west
 * corner and flows east then south, each PE adding its own
 * contribution, with the running results stored from the south-east
 * corner.
 *
 *   (0,0) fetch+fwd --E--> (0,1) +10
 *                             |S
 *   (1,0) store  <--W--   (1,1) +counter
 *
 * Demonstrates: MeshBuilder wiring, edge memory ports, and per-PE
 * counter readout across the whole array.
 */

#include <cstdio>

#include "core/assembler.hh"
#include "sim/mesh.hh"
#include "uarch/cycle_fabric.hh"

namespace {

constexpr unsigned kCount = 256;
constexpr tia::Word kInBase = 16;
constexpr tia::Word kOutBase = 2048;

} // namespace

int
main()
{
    using namespace tia;

    // Port convention: 0 = N, 1 = E, 2 = S, 3 = W for both inputs and
    // outputs.
    const char *source =
        // (0,0): decoupled streamer fetching kCount words through the
        // north edge read port, forwarding east; the final request is
        // tagged so the stream ends itself.
        ".pe 0\n"
        ".def SBASE 16\n"
        "when %p == XXXXXXXX with %i0.0: mov %o1.0, %i0; deq %i0;\n"
        "when %p == XX0XXXX0 with %i0.1: mov %o1.0, %i0; deq %i0; "
        "set %p = ZZ1ZZZZZ;\n"
        "when %p == XX1XXXXX: mov %o1.1, #0; set %p = ZZ0ZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n"
        "when %p == XXXXX00X: ult %p4, %r0, %r1; set %p = ZZZZZ01Z;\n"
        "when %p == XXX1X01X: add %o0.0, %r0, SBASE; set %p = ZZZZZ10Z;\n"
        "when %p == XXXXX10X: add %r0, %r0, #1; set %p = ZZZZZ00Z;\n"
        "when %p == XXX0X01X: add %o0.1, %r0, SBASE; set %p = ZZZZZ11Z;\n"
        // (0,1): add a constant bias, send south.
        ".pe 1\n"
        "when %p == XXXXXXX0 with %i3.0: add %o2.0, %i3, #10; deq %i3;\n"
        "when %p == XXXXXXX0 with %i3.1: mov %o2.1, #0; deq %i3; "
        "set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n"
        // (1,1): add a running counter, send west.
        ".pe 3\n"
        "when %p == XXXXXX00 with %i0.0: add %o3.0, %i0, %r0; deq %i0; "
        "set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01: add %r0, %r0, #1; set %p = ZZZZZZ00;\n"
        "when %p == XXXXXX00 with %i0.1: mov %o3.1, #0; deq %i0; "
        "set %p = ZZZZZZ1X;\n"
        "when %p == XXXXXX1X: halt;\n"
        // (1,0): store the stream through the south edge write port.
        ".pe 2\n"
        ".def OBASE 2048\n"
        "when %p == XXXXX000 with %i1.0: add %o2.0, %r0, OBASE; "
        "set %p = ZZZZZ001;\n"
        "when %p == XXXXX001: mov %o3.0, %i1; deq %i1; "
        "set %p = ZZZZZ011;\n"
        "when %p == XXXXX011: add %r0, %r0, #1; set %p = ZZZZZ000;\n"
        "when %p == XXXXX000 with %i1.1: halt;\n";

    const Program program = assemble(source);

    MeshBuilder builder(ArchParams{}, 2, 2);
    builder.addEdgeReadPort(0, 0, kNorth); // (0,0) north edge: fetch
    // (1,0) write port on its two free edge-facing outputs:
    // addresses leave south, data leaves west.
    builder.addEdgeWritePort(1, 0, kSouth, kWest);
    // Streamer protocol: r0 = next index, r1 = count - 1.
    builder.setInitialRegs(builder.pe(0, 0), {0, kCount - 1});
    const FabricConfig config = builder.build();

    auto preload = [](Memory &memory) {
        for (unsigned i = 0; i < kCount; ++i)
            memory.write(kInBase + i, i * 3);
    };

    std::printf("2x2 mesh prefix pipeline over %u values\n\n", kCount);
    std::printf("%-16s %8s %8s %6s   per-PE retired\n", "uarch", "cycles",
                "status", "ok");
    for (const PeConfig &uarch :
         {PeConfig{PipelineShape{false, false, false}, false, false},
          PeConfig{PipelineShape{true, false, false}, true, true},
          PeConfig{PipelineShape{true, true, true}, true, true, true}}) {
        CycleFabric fabric(config, program, uarch);
        preload(fabric.memory());
        const RunStatus status = fabric.run();

        bool ok = true;
        for (unsigned i = 0; i < kCount; ++i) {
            const Word expected = i * 3 + 10 + i;
            if (fabric.memory().read(kOutBase + i) != expected)
                ok = false;
        }
        std::printf("%-16s %8llu %8s %6s  ",
                    uarch.name().c_str(),
                    static_cast<unsigned long long>(fabric.now()),
                    status == RunStatus::Halted ? "halted" : "stuck",
                    ok ? "yes" : "NO");
        for (unsigned pe = 0; pe < fabric.numPes(); ++pe) {
            std::printf(" PE%u=%llu", pe,
                        static_cast<unsigned long long>(
                            fabric.pe(pe).counters().retired));
        }
        std::printf("\n");
    }
    return 0;
}
