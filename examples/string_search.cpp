/**
 * @file
 * Domain example: the paper's string_search workload (a DFA scanning a
 * byte stream for "MICRO", Table 3) run across all eight pipeline
 * shapes with and without the hazard mitigations — a miniature of the
 * paper's Figure 5 study on a single branchy workload.
 */

#include <cstdio>

#include "workloads/runner.hh"

int
main()
{
    using namespace tia;

    const Workload w = makeStringSearch(WorkloadSizes::full());
    std::printf("%s\n%s\n\n", w.name.c_str(), w.description.c_str());

    std::printf("%-18s %8s %6s %8s %8s %8s %9s\n", "Design", "cycles",
                "CPI", "predHaz", "quashed", "forbid", "noTrig");
    for (const PeConfig &config : figure5Configs()) {
        const WorkloadRun run = runCycle(w, config);
        if (!run.ok()) {
            std::printf("%-18s FAILED: %s\n", config.name().c_str(),
                        run.checkError.c_str());
            return 1;
        }
        const PerfCounters &c = run.worker;
        std::printf("%-18s %8llu %6.3f %8llu %8llu %8llu %9llu\n",
                    config.name().c_str(),
                    static_cast<unsigned long long>(c.cycles), c.cpi(),
                    static_cast<unsigned long long>(c.predicateHazard),
                    static_cast<unsigned long long>(c.quashed),
                    static_cast<unsigned long long>(c.forbidden),
                    static_cast<unsigned long long>(c.noTrigger));
    }

    // Show the DFA reacting: report how many matches the run found.
    const WorkloadRun golden = runFunctional(w);
    std::printf("\nWorker retired %llu instructions; run %s.\n",
                static_cast<unsigned long long>(golden.worker.retired),
                golden.ok() ? "validated against the golden DFA"
                            : "FAILED validation");
    return 0;
}
