/**
 * @file
 * A spatial processing chain built from scratch: three PEs compute a
 * running "sum of squares of deltas" over a memory-resident signal —
 * PE 0 streams samples, PE 1 differentiates consecutive samples,
 * PE 2 squares and accumulates, storing the result back to memory.
 *
 * Demonstrates: multi-PE assembly, tag-based end-of-stream protocol,
 * custom fabric wiring with read and write ports, and comparing
 * microarchitectures on a user workload.
 */

#include <cstdio>

#include "core/assembler.hh"
#include "uarch/cycle_fabric.hh"

namespace {

constexpr tia::Word kSignalBase = 16;
constexpr unsigned kSamples = 512;

} // namespace

int
main()
{
    using namespace tia;

    const char *source =
        // PE 0: decoupled streamer (request/respond; final request
        // carries tag 1 which the read port echoes).
        ".pe 0\n"
        ".def SBASE 16\n"
        "when %p == XXXXXXXX with %i0.0: mov %o3.0, %i0; deq %i0;\n"
        "when %p == XX0XXXX0 with %i0.1: mov %o3.0, %i0; deq %i0; "
        "set %p = ZZ1ZZZZZ;\n"
        "when %p == XX1XXXXX: mov %o3.1, #0; set %p = ZZ0ZZZZ1;\n"
        "when %p == XXXXXXX1: halt;\n"
        "when %p == XXXXX00X: ult %p4, %r0, %r1; set %p = ZZZZZ01Z;\n"
        "when %p == XXX1X01X: add %o0.0, %r0, SBASE; set %p = ZZZZZ10Z;\n"
        "when %p == XXXXX10X: add %r0, %r0, #1; set %p = ZZZZZ00Z;\n"
        "when %p == XXX0X01X: add %o0.1, %r0, SBASE; set %p = ZZZZZ11Z;\n"
        // PE 1: delta = sample - previous (r0 holds the previous).
        ".pe 1\n"
        "when %p == XXXXXXX0 with %i0.0: sub %o0.0, %i0, %r0; "
        "set %p = ZZZZZZZ1;\n"
        "when %p == XXXXXXX1: mov %r0, %i0; deq %i0; set %p = ZZZZZZZ0;\n"
        "when %p == XXXXXXX0 with %i0.1: mov %o0.1, #0; deq %i0; "
        "set %p = ZZZZZZ1X;\n"
        "when %p == XXXXXX1X: halt;\n"
        // PE 2: accumulate delta^2; on end-of-stream store and halt.
        ".pe 2\n"
        "when %p == XXXXXX00 with %i0.0: mul %r1, %i0, %i0; deq %i0; "
        "set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01: add %r0, %r0, %r1; set %p = ZZZZZZ00;\n"
        "when %p == XXXXXX00 with %i0.1: mov %o1.0, #0; deq %i0; "
        "set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10: mov %o2.0, %r0; set %p = ZZZZZZ11;\n"
        "when %p == XXXXXX11: halt;\n";

    const Program program = assemble(source);

    FabricBuilder builder(program.params, 3);
    builder.addReadPort(0, 0, 0);  // PE 0: %o0 = addresses, %i0 = data
    builder.connect(0, 3, 1, 0);   // samples -> differentiator
    builder.connect(1, 0, 2, 0);   // deltas -> accumulator
    builder.addWritePort(2, 1, 2); // PE 2: %o1 = address, %o2 = data
    builder.setInitialRegs(0, {0, kSamples - 1});
    const FabricConfig config = builder.build();

    // A bumpy synthetic signal.
    auto preload = [](Memory &memory) {
        Word x = 1000;
        for (unsigned i = 0; i < kSamples; ++i) {
            x += (i * 37 % 13) - 6;
            memory.write(kSignalBase + i, x);
        }
    };

    // Golden value.
    Word expected = 0;
    {
        Word x = 1000, prev = 0;
        for (unsigned i = 0; i < kSamples; ++i) {
            x += (i * 37 % 13) - 6;
            const Word delta = x - prev;
            expected += delta * delta;
            prev = x;
        }
    }

    std::printf("Sum of squared deltas over %u samples; expected %u\n\n",
                kSamples, expected);
    std::printf("%-18s %8s %8s %6s  %s\n", "Microarchitecture", "cycles",
                "retired", "CPI", "result");

    for (const PeConfig &uarch :
         {PeConfig{PipelineShape{false, false, false}, false, false},
          PeConfig{PipelineShape{true, false, false}, false, false},
          PeConfig{PipelineShape{true, false, false}, true, true},
          PeConfig{PipelineShape{true, true, true}, true, true}}) {
        CycleFabric fabric(config, program, uarch);
        preload(fabric.memory());
        const RunStatus status = fabric.run();
        const PerfCounters &c = fabric.pe(2).counters();
        const Word result = fabric.memory().read(0);
        std::printf("%-18s %8llu %8llu %6.3f  %u%s%s\n",
                    uarch.name().c_str(),
                    static_cast<unsigned long long>(c.cycles),
                    static_cast<unsigned long long>(c.retired), c.cpi(),
                    result, result == expected ? " (ok)" : " (WRONG)",
                    status == RunStatus::Halted ? "" : " [did not halt]");
    }
    return 0;
}
