/**
 * @file
 * Quickstart: write a triggered-instruction program, assemble it, run
 * it on the functional simulator and on a pipelined microarchitecture,
 * and read back results and performance counters.
 *
 * The program computes the sum 1 + 2 + ... + 100 on one PE and stores
 * it to memory through a write port.
 */

#include <cstdio>

#include "core/assembler.hh"
#include "sim/functional.hh"
#include "uarch/cycle_fabric.hh"

int
main()
{
    using namespace tia;

    // 1. Write the program. Triggers are guards over predicate state;
    //    `set %p = ...` updates predicates at issue; priority is
    //    textual order.
    const char *source =
        "// accumulate r1 += r0 while r0 <= 100\n"
        ".def LIMIT 100\n"
        "when %p == XXXXX000: add %r0, %r0, #1; set %p = ZZZZZZ01;\n"
        "when %p == XXXXXX01: add %r1, %r1, %r0; set %p = ZZZZZZ10;\n"
        "when %p == XXXXXX10: uge %p2, %r0, LIMIT; set %p = ZZZZZZ00;\n"
        "when %p == XXXX0100: mov %o1.0, #0; set %p = ZZZZ1100;\n"
        "when %p == XXXX1100: mov %o2.0, %r1; set %p = ZZZ11100;\n"
        "when %p == XXX11100: halt;\n";

    // 2. Assemble against the paper's default parameters (Table 1).
    const Program program = assemble(source);
    std::printf("Assembled %u instructions for %u PE(s)\n",
                program.staticInstructions(), program.numPes());

    // 3. Describe the fabric: one PE with a memory write port bound to
    //    output queues 1 (addresses) and 2 (data).
    FabricBuilder builder(program.params, 1);
    builder.addWritePort(0, 1, 2);
    const FabricConfig config = builder.build();

    // 4. Run functionally (the golden reference).
    FunctionalFabric golden(config, program);
    golden.run();
    std::printf("Functional result: memory[0] = %u (expected %u)\n",
                golden.memory().read(0), 100u * 101u / 2u);

    // 5. Run cycle-accurately on a 3-stage pipeline with both hazard
    //    mitigations from the paper enabled.
    const PeConfig uarch{PipelineShape{true, false, true}, // T|DX1|X2
                         /*predictPredicates=*/true,
                         /*effectiveQueueStatus=*/true};
    CycleFabric fabric(config, program, uarch);
    fabric.run();

    const PerfCounters &c = fabric.pe(0).counters();
    std::printf("\n%s: %llu cycles, %llu retired, CPI %.3f\n",
                uarch.name().c_str(),
                static_cast<unsigned long long>(c.cycles),
                static_cast<unsigned long long>(c.retired), c.cpi());
    std::printf("  predicate writes %llu, predictions %llu "
                "(%.1f%% accurate), quashed %llu\n",
                static_cast<unsigned long long>(c.predicateWrites),
                static_cast<unsigned long long>(c.predictions),
                c.predictionAccuracy() * 100.0,
                static_cast<unsigned long long>(c.quashed));
    std::printf("Cycle-accurate result: memory[0] = %u\n",
                fabric.memory().read(0));
    return 0;
}
