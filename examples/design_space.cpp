/**
 * @file
 * Design-space exploration example: pick the best PE microarchitecture
 * and operating point under a power-density budget — the kind of
 * question the paper's Section 5.4 "Power Density" discussion poses
 * for architects of massively replicated spatial fabrics.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "vlsi/dse.hh"
#include "workloads/cpi.hh"

int
main(int argc, char **argv)
{
    using namespace tia;

    // Power-density budget in mW/mm^2 (default: the 65 nm GPU-class
    // ceiling of ~300 the paper cites; pass another value as argv[1]).
    double budget = 300.0;
    if (argc > 1)
        budget = std::atof(argv[1]);

    std::printf("Measuring suite-average CPI on all 32 "
                "microarchitectures (cycle-accurate runs)...\n");
    const DesignSpace dse(suiteAverageCpiTable(WorkloadSizes::small()));

    std::vector<DesignPoint> admissible;
    for (const DesignPoint &p : dse.enumerate()) {
        if (p.powerDensity() <= budget)
            admissible.push_back(p);
    }
    std::printf("%zu of %zu timing-closed design points fit under "
                "%.0f mW/mm^2\n\n",
                admissible.size(), dse.enumerate().size(), budget);

    const auto frontier = DesignSpace::paretoFrontier(admissible);

    // Fastest admissible, most efficient, and best EDP.
    const DesignPoint *fastest = &frontier.front();
    const DesignPoint *thriftiest = &frontier.back();
    const DesignPoint *best_edp = &frontier.front();
    for (const DesignPoint &p : frontier) {
        if (p.edp() < best_edp->edp())
            best_edp = &p;
    }

    auto show = [](const char *label, const DesignPoint &p) {
        std::printf("%-22s %-18s %-8s %.1f V %5.0f MHz  %7.3f ns/ins  "
                    "%8.3f pJ/ins  %6.1f mW/mm^2\n",
                    label, p.config.name().c_str(), vtName(p.vt), p.vdd,
                    p.freqMhz, p.nsPerInstruction, p.pjPerInstruction,
                    p.powerDensity());
    };
    show("Fastest:", *fastest);
    show("Most efficient:", *thriftiest);
    show("Best energy-delay:", *best_edp);

    std::printf("\nFull admissible Pareto frontier (%zu points):\n",
                frontier.size());
    for (const DesignPoint &p : frontier) {
        std::printf("  %-18s %-8s %.1f V %5.0f MHz  %8.3f ns  %8.3f pJ\n",
                    p.config.name().c_str(), vtName(p.vt), p.vdd,
                    p.freqMhz, p.nsPerInstruction, p.pjPerInstruction);
    }
    return 0;
}
